package emigre

import (
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/why-not-xai/emigre/internal/hin"
	"github.com/why-not-xai/emigre/internal/rec"
)

// TestReweightFindsExplanation depresses the user's fantasy edge to a
// low weight so that raising it ("rate it 5 stars") can flip the
// recommendation toward the fantasy cluster.
func TestReweightFindsExplanation(t *testing.T) {
	f := newFixture(t, Options{ReweightTo: 5})
	// Depress u→f1 before the recommender snapshot: rebuild fixture
	// graph first, then recreate recommender and explainer.
	if err := f.g.RemoveEdge(f.ids["u"], f.ids["f1"], f.rated); err != nil {
		t.Fatal(err)
	}
	if err := f.g.AddEdge(f.ids["u"], f.ids["f1"], f.rated, 0.5); err != nil {
		t.Fatal(err)
	}
	item, _ := f.g.Types().LookupNodeType("item")
	cfg := rec.DefaultConfig(item)
	cfg.Beta = 1
	r, err := rec.New(f.g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ex := New(f.g, r, Options{
		AllowedEdgeTypes: hin.NewEdgeTypeSet(f.rated),
		AddEdgeType:      f.rated,
		ReweightTo:       5,
	})
	q := Query{User: f.ids["u"], WNI: f.ids["f2"]}
	for _, method := range []Method{Incremental, Powerset, Exhaustive} {
		expl, err := ex.ExplainWith(q, Reweight, method)
		if errors.Is(err, ErrNoExplanation) {
			t.Fatalf("%v: no reweight explanation found", method)
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(expl.Reweights) == 0 {
			t.Fatal("explanation carries no reweights")
		}
		for _, e := range expl.Reweights {
			if e.Weight != 5 {
				t.Fatalf("reweight target weight = %g, want 5", e.Weight)
			}
			old, ok := f.g.EdgeWeight(e.From, e.To, e.Type)
			if !ok {
				t.Fatalf("reweighted edge %v does not exist", e)
			}
			if old >= 5 {
				t.Fatalf("edge %v already at or above the target weight", e)
			}
		}
		ok, err := ex.Verify(expl)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("%v: reweight explanation does not verify", method)
		}
		text := expl.Describe(f.g)
		if !strings.Contains(text, "Had you rated") || !strings.Contains(text, "weight 5") {
			t.Fatalf("describe = %q", text)
		}
	}
}

func TestReweightNoCandidatesAtTarget(t *testing.T) {
	// All fixture edges already sit at weight 1 = ReweightTo: the
	// search space must be empty and the explainer must report a clean
	// miss.
	f := newFixture(t, Options{ReweightTo: 1})
	s, err := f.ex.newSession(context.Background(), f.query(), Reweight)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.cands) != 0 {
		t.Fatalf("|H| = %d, want 0 (all weights at target)", len(s.cands))
	}
	if _, err := f.ex.ExplainWith(f.query(), Reweight, Powerset); !errors.Is(err, ErrNoExplanation) {
		t.Fatalf("err = %v, want ErrNoExplanation", err)
	}
}

func TestReweightBruteForceRejected(t *testing.T) {
	f := newFixture(t, Options{})
	if _, err := f.ex.ExplainWith(f.query(), Reweight, BruteForce); !errors.Is(err, ErrBruteForceAddMode) {
		t.Fatalf("err = %v, want ErrBruteForceAddMode", err)
	}
}

func TestOverlayReweightSemantics(t *testing.T) {
	// The check path expresses a reweight as remove+add of the same
	// typed edge; the overlay must expose exactly one edge with the new
	// weight.
	f := newFixture(t, Options{})
	u, p1 := f.ids["u"], f.ids["p1"]
	e := hin.Edge{From: u, To: p1, Type: f.rated, Weight: 4}
	o, err := hin.NewOverlay(f.g, []hin.Edge{e}, []hin.Edge{e})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	var got float64
	o.OutEdges(u, func(h hin.HalfEdge) bool {
		if h.Node == p1 && h.Type == f.rated {
			count++
			got = h.Weight
		}
		return true
	})
	if count != 1 || got != 4 {
		t.Fatalf("overlay shows %d edges with weight %g, want 1 edge at 4", count, got)
	}
	if !o.HasEdge(u, p1) {
		t.Fatal("reweighted edge missing from HasEdge")
	}
	// Out weight sum adjusted: base 3 (three unit edges) − 1 + 4 = 6.
	if sum := o.OutWeightSum(u); sum != 6 {
		t.Fatalf("OutWeightSum = %g, want 6", sum)
	}
}
