package emigre

import (
	"errors"
	"testing"

	"github.com/why-not-xai/emigre/internal/hin"
)

func TestTargetRankAlreadySatisfied(t *testing.T) {
	// f2 sits at rank 2 of u's list; with TargetRank 3 the question is
	// void.
	f := newFixture(t, Options{TargetRank: 3})
	_, err := f.ex.ExplainWith(f.query(), Remove, Powerset)
	if !errors.Is(err, ErrAlreadyTop) {
		t.Fatalf("err = %v, want ErrAlreadyTop", err)
	}
}

func TestTargetRankRelaxedSuccess(t *testing.T) {
	// f3's single-item top-1 question is unanswerable in Remove mode
	// (f2 intercepts the top spot); asking only for the top-2 makes it
	// answerable: f2 first, f3 second.
	f1 := newFixture(t, Options{})
	q := Query{User: f1.ids["u"], WNI: f1.ids["f3"]}
	if _, err := f1.ex.ExplainWith(q, Remove, Exhaustive); err == nil {
		t.Skip("fixture assumption broken: top-1 question answerable")
	}
	f2 := newFixture(t, Options{TargetRank: 2})
	expl, err := f2.ex.ExplainWith(q, Remove, Exhaustive)
	if err != nil {
		t.Fatalf("top-2 question should be answerable: %v", err)
	}
	// Verify the relaxed criterion by replay: f3 within the new top-2.
	o, err := overlayFor(f2, expl)
	if err != nil {
		t.Fatal(err)
	}
	top, err := f2.r.WithView(o).TopN(q.User, 2)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, sc := range top {
		if sc.Node == q.WNI {
			found = true
		}
	}
	if !found {
		t.Fatalf("WNI not in replayed top-2: %v", top)
	}
	// NewTop reports the actual top-1 (f2 here), not the WNI.
	if expl.NewTop != f2.ids["f2"] {
		t.Fatalf("NewTop = %v, want the actual top-1 f2", expl.NewTop)
	}
}

func TestTargetRankDynamicCheckAgrees(t *testing.T) {
	q := func(f *fixture) Query { return Query{User: f.ids["u"], WNI: f.ids["f3"]} }
	fs := newFixture(t, Options{TargetRank: 2})
	fd := newFixture(t, Options{TargetRank: 2, DynamicCheck: true})
	es, errS := fs.ex.ExplainWith(q(fs), Remove, Exhaustive)
	ed, errD := fd.ex.ExplainWith(q(fd), Remove, Exhaustive)
	if (errS == nil) != (errD == nil) {
		t.Fatalf("static err %v vs dynamic err %v", errS, errD)
	}
	if errS != nil {
		t.Skip("no explanation at rank 2 in this fixture")
	}
	if es.Size() != ed.Size() {
		t.Fatalf("sizes differ: %d vs %d", es.Size(), ed.Size())
	}
}

// overlayFor materializes an explanation's counterfactual as an
// overlay of the fixture graph.
func overlayFor(f *fixture, expl *Explanation) (*hin.Overlay, error) {
	removals := append([]hin.Edge(nil), expl.Removals...)
	additions := append([]hin.Edge(nil), expl.Additions...)
	removals = append(removals, expl.Reweights...)
	additions = append(additions, expl.Reweights...)
	return hin.NewOverlay(f.g, removals, additions)
}
