package emigre

import (
	"context"
	"errors"
	"fmt"
)

// FailureKind classifies why a Why-Not question could not be answered
// in a given mode — the meta-explanations sketched in §6.4 of the
// paper, which suggests presenting them to the user as a remedy for the
// low Remove-mode success rate.
type FailureKind int

const (
	// FailureNone: the question is answerable in the probed mode.
	FailureNone FailureKind = iota
	// FailureColdStart: the user has too few past actions for the mode
	// to work with ("Cold Start And Less Active Users", §6.4).
	FailureColdStart
	// FailureOutOfScope: the probed mode cannot answer, but another
	// mode can ("Out Of Scope Item", §6.4) — the case the Combined mode
	// was added for.
	FailureOutOfScope
	// FailurePopularItem: no mode answers within budget; the displaced
	// recommendation draws its score from other users' actions, beyond
	// this user's counterfactual reach ("Popular Item", §6.4, Figure 7).
	FailurePopularItem
)

// String names the failure kind.
func (k FailureKind) String() string {
	switch k {
	case FailureNone:
		return "none"
	case FailureColdStart:
		return "cold-start"
	case FailureOutOfScope:
		return "out-of-scope"
	case FailurePopularItem:
		return "popular-item"
	default:
		return fmt.Sprintf("failure(%d)", int(k))
	}
}

// Diagnosis is a meta-explanation for an unanswerable Why-Not question.
type Diagnosis struct {
	Kind FailureKind
	// Actions is the number of past actions available to Remove mode.
	Actions int
	// WorkingMode is set for FailureOutOfScope: a mode that does answer
	// the question.
	WorkingMode Mode
	// PopularInDegree is set for FailurePopularItem: the in-degree of
	// the recommendation that could not be displaced.
	PopularInDegree int
	// Detail is a one-line human-readable summary.
	Detail string
}

// DefaultColdStartThreshold is the action count at or below which a
// failure is attributed to user inactivity.
const DefaultColdStartThreshold = 5

// Diagnose explains why the query has no explanation in the probed
// mode. It returns FailureNone (with a nil error) when the probed mode
// actually answers the question. Probing uses the Exhaustive strategy,
// the most complete one. Query-validation errors (ErrNotWhyNotItem,
// ErrAlreadyTop) are returned unchanged.
func (e *Explainer) Diagnose(q Query, probed Mode) (*Diagnosis, error) {
	return e.DiagnoseContext(context.Background(), q, probed)
}

// DiagnoseContext is Diagnose with cancellation: the probes — each a
// full Exhaustive search — abort with a *CanceledError once ctx is
// done, so a diagnosis is never mis-classified from a half-run probe.
func (e *Explainer) DiagnoseContext(ctx context.Context, q Query, probed Mode) (*Diagnosis, error) {
	if _, err := e.newSession(ctx, q, probed); err != nil {
		return nil, err
	}
	if _, err := e.ExplainWithContext(ctx, q, probed, Exhaustive); err == nil {
		return &Diagnosis{Kind: FailureNone, Detail: "the question is answerable in this mode"}, nil
	} else if !errors.Is(err, ErrNoExplanation) {
		return nil, err
	}
	actions := len(e.g.OutEdgesOfType(q.User, e.opts.AllowedEdgeTypes))
	// Out-of-scope first: if any other mode answers, that is the most
	// actionable meta-explanation regardless of the user's activity.
	for _, other := range []Mode{Remove, Add, Combined, Reweight} {
		if other == probed {
			continue
		}
		_, err := e.ExplainWithContext(ctx, q, other, Exhaustive)
		if err == nil {
			return &Diagnosis{
				Kind:        FailureOutOfScope,
				Actions:     actions,
				WorkingMode: other,
				Detail:      fmt.Sprintf("out of scope for %s mode: %s mode answers it", probed, other),
			}, nil
		}
		if errors.Is(err, ErrCanceled) {
			return nil, err
		}
	}
	if actions <= DefaultColdStartThreshold {
		return &Diagnosis{
			Kind:    FailureColdStart,
			Actions: actions,
			Detail:  fmt.Sprintf("cold start: only %d past actions to work with", actions),
		}, nil
	}
	inDeg := 0
	current, err := e.r.RecommendContext(ctx, q.User)
	if err == nil {
		inDeg = e.g.InDegree(current)
	}
	return &Diagnosis{
		Kind:            FailurePopularItem,
		Actions:         actions,
		PopularInDegree: inDeg,
		Detail: fmt.Sprintf("popular item: the recommendation has %d incoming links powered by other users (Figure 7)",
			inDeg),
	}, nil
}
