package emigre

import (
	"reflect"
	"testing"

	"github.com/why-not-xai/emigre/internal/pprcache"
	"github.com/why-not-xai/emigre/internal/rec"
)

// TestCacheABExplanationsIdentical is the acceptance A/B: every mode ×
// method must produce byte-identical explanations with the vector cache
// enabled (the default) and disabled. The cache may only change how
// much work runs, never what is returned.
func TestCacheABExplanationsIdentical(t *testing.T) {
	for _, mode := range []Mode{Remove, Add} {
		for _, method := range allMethods(mode) {
			cached := newFixture(t, Options{Mode: mode, Method: method})
			uncached := newFixture(t, Options{Mode: mode, Method: method, DisableCache: true})
			if cached.ex.Cache() == nil {
				t.Fatal("default explainer has no cache")
			}
			if uncached.ex.Cache() != nil {
				t.Fatal("DisableCache left a cache attached")
			}

			want, errW := cached.ex.Explain(cached.query())
			got, errG := uncached.ex.Explain(uncached.query())
			if (errW == nil) != (errG == nil) {
				t.Fatalf("%v/%v: cached err=%v uncached err=%v", mode, method, errW, errG)
			}
			if errW != nil {
				if errW.Error() != errG.Error() {
					t.Fatalf("%v/%v: error mismatch: %q vs %q", mode, method, errW, errG)
				}
				continue
			}
			// Wall-clock is the only field allowed to differ.
			want.Stats.Duration, got.Stats.Duration = 0, 0
			if !reflect.DeepEqual(want, got) {
				t.Errorf("%v/%v: explanations diverge:\ncached:   %+v\nuncached: %+v", mode, method, want, got)
			}
		}
	}
}

// TestCacheABTopNIdentical pins the same property one layer down: the
// recommender's ranking is bit-for-bit unaffected by an attached cache.
func TestCacheABTopNIdentical(t *testing.T) {
	plain := newFixture(t, Options{DisableCache: true})
	cachedRec := *plain.r
	cachedRec.SetCache(pprcache.New(pprcache.Config{}))

	u := plain.ids["u"]
	for range [2]int{} { // second pass serves the cached side from residency
		want, err := plain.r.TopN(u, 10)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cachedRec.TopN(u, 10)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("rankings diverge:\nuncached: %v\ncached:   %v", want, got)
		}
	}
	if s := cachedRec.Cache().Stats(); s.Hits == 0 || s.Misses == 0 {
		t.Fatalf("cached recommender did not exercise both paths: %+v", s)
	}
}

// TestExplainerCacheReuseAcrossQueries checks that the second identical
// query is served mostly from residency: the baseline columns and
// forward vectors computed by the first session become hits.
func TestExplainerCacheReuseAcrossQueries(t *testing.T) {
	f := newFixture(t, Options{Mode: Remove, Method: Exhaustive})
	q := f.query()
	if _, err := f.ex.Explain(q); err != nil {
		t.Fatal(err)
	}
	after1 := f.ex.Cache().Stats()
	if after1.Misses == 0 {
		t.Fatalf("first query computed nothing: %+v", after1)
	}
	expl1, err := f.ex.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	after2 := f.ex.Cache().Stats()
	if after2.Hits <= after1.Hits {
		t.Fatalf("second query hit nothing: %+v -> %+v", after1, after2)
	}
	// The base-view vectors (session baseline + targets) are all warm;
	// only counterfactual overlays may still miss. Sanity-check the
	// explanation is still produced and verified.
	if !expl1.Verified {
		t.Fatal("second explanation lost verification")
	}
}

// TestExplainerVerifyHitsExplainResidency checks the overlay-digest
// property end to end: Verify rebuilds the winning counterfactual
// overlay from the explanation's edge set, and because overlay versions
// are digests of the edit set — not pointer identities — its CHECK
// scores come from the cache entries the search already populated.
func TestExplainerVerifyHitsExplainResidency(t *testing.T) {
	f := newFixture(t, Options{Mode: Remove, Method: Incremental})
	expl, err := f.ex.Explain(f.query())
	if err != nil {
		t.Fatal(err)
	}
	before := f.ex.Cache().Stats()
	ok, err := f.ex.Verify(expl)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("explanation did not re-verify")
	}
	after := f.ex.Cache().Stats()
	if after.Hits <= before.Hits {
		t.Fatalf("Verify recomputed everything: %+v -> %+v", before, after)
	}
}

// TestNewDoesNotMutateCallerRecommender pins the copy semantics: New
// rebinds the recommender to the explainer's cache via a copy, so the
// caller's instance stays cache-free.
func TestNewDoesNotMutateCallerRecommender(t *testing.T) {
	f := newFixture(t, Options{})
	if f.r.Cache() != nil {
		t.Fatal("New attached its cache to the caller's recommender")
	}
	var r2 rec.Recommender = *f.r
	r2.SetCache(pprcache.New(pprcache.Config{}))
	ex := New(f.g, &r2, Options{})
	if ex.Cache() == r2.Cache() {
		t.Fatal("explainer should keep its own cache, not adopt the recommender's")
	}
	if _, err := ex.Explain(f.query()); err != nil {
		t.Fatal(err)
	}
}

// TestSharedCacheAcrossExplainAndRecommender is the serving topology:
// one cache injected into both the recommender and the explainer. The
// explainer must adopt it rather than build a private one.
func TestSharedCacheAcrossExplainAndRecommender(t *testing.T) {
	shared := pprcache.New(pprcache.Config{})
	f := newFixture(t, Options{Cache: shared})
	if f.ex.Cache() != shared {
		t.Fatal("explainer ignored the injected cache")
	}
	if _, err := f.ex.Explain(f.query()); err != nil {
		t.Fatal(err)
	}
	if s := shared.Stats(); s.Misses == 0 {
		t.Fatalf("injected cache saw no traffic: %+v", s)
	}
}
