package emigre

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/why-not-xai/emigre/internal/hin"
)

// countingCtx is a context whose Err starts failing after a set number
// of polls. The search loops only ever poll Err (never Done), so this
// deterministically injects a cancellation at an exact point mid-search
// without any goroutines or timing.
type countingCtx struct {
	context.Context
	calls       int
	cancelAfter int // Err returns context.Canceled from this call on; 0 = never
}

func (c *countingCtx) Err() error {
	c.calls++
	if c.cancelAfter > 0 && c.calls >= c.cancelAfter {
		return context.Canceled
	}
	return nil
}

func (c *countingCtx) Done() <-chan struct{} { return nil }

func canceledContext() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

func TestExplainContextPreCanceled(t *testing.T) {
	f := newFixture(t, Options{})
	for _, mode := range []Mode{Remove, Add, Combined} {
		for _, method := range allMethods(mode) {
			expl, err := f.ex.ExplainWithContext(canceledContext(), f.query(), mode, method)
			if expl != nil {
				t.Fatalf("%v/%v: got explanation despite canceled ctx", mode, method)
			}
			if !errors.Is(err, ErrCanceled) {
				t.Fatalf("%v/%v: err = %v, want ErrCanceled", mode, method, err)
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("%v/%v: err = %v, want to match context.Canceled too", mode, method, err)
			}
		}
	}
}

// TestExplainContextMidSearch cancels exactly at the last context poll
// a successful search would have made, proving the loops notice a
// cancellation that arrives while the search is underway — not just one
// present at entry — and report the work done so far.
func TestExplainContextMidSearch(t *testing.T) {
	f := newFixture(t, Options{})
	q := f.query()
	for _, method := range []Method{Powerset, Exhaustive} {
		t.Run(method.String(), func(t *testing.T) {
			full := &countingCtx{Context: context.Background()}
			expl, err := f.ex.ExplainWithContext(full, q, Remove, method)
			if err != nil {
				t.Fatalf("full run: %v", err)
			}
			if full.calls < 2 {
				t.Fatalf("full run polled ctx only %d times; cannot cancel mid-search", full.calls)
			}

			// Cancel exactly at the final poll of the successful run: the
			// search is underway and must abort instead of finishing.
			mid := &countingCtx{Context: context.Background(), cancelAfter: full.calls}
			_, err = f.ex.ExplainWithContext(mid, q, Remove, method)
			if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want ErrCanceled wrapping context.Canceled", err)
			}
			var ce *CanceledError
			if !errors.As(err, &ce) {
				t.Fatalf("err = %v, want *CanceledError", err)
			}
			if ce.Stats.Duration <= 0 {
				t.Fatalf("partial stats missing duration: %+v", ce.Stats)
			}
			if ce.Stats.Tests > expl.Stats.Tests {
				t.Fatalf("partial run counted %d checks, full run only %d",
					ce.Stats.Tests, expl.Stats.Tests)
			}
		})
	}
}

func TestDiagnoseContextCanceled(t *testing.T) {
	f := newFixture(t, Options{})
	if _, err := f.ex.DiagnoseContext(canceledContext(), f.query(), Remove); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestExplainGroupContextCanceled(t *testing.T) {
	f := newFixture(t, Options{})
	gq := GroupQuery{User: f.ids["u"], Items: []hin.NodeID{f.ids["f2"], f.ids["f3"]}}
	if _, err := f.ex.ExplainGroupContext(canceledContext(), gq, Remove, Powerset); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// TestExplainContextDeadline runs a real deadline through the public
// API: an already-expired timeout must surface as ErrCanceled wrapping
// context.DeadlineExceeded (what the server maps to 504).
func TestExplainContextDeadline(t *testing.T) {
	f := newFixture(t, Options{})
	ctx, cancel := context.WithTimeout(context.Background(), -time.Second)
	defer cancel()
	_, err := f.ex.ExplainWithContext(ctx, f.query(), Remove, Powerset)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrCanceled wrapping DeadlineExceeded", err)
	}
}

// TestExplainDelegatesToContext pins the compatibility contract: the
// original entry points still work and never report cancellation.
func TestExplainDelegatesToContext(t *testing.T) {
	f := newFixture(t, Options{})
	expl, err := f.ex.ExplainWith(f.query(), Remove, Powerset)
	if err != nil {
		t.Fatal(err)
	}
	if expl.Size() == 0 {
		t.Fatal("empty explanation")
	}
}
