// Package cli holds the plumbing shared by the emigre command-line
// tools: graph loading, node addressing, and enum parsing. It lives in
// its own package so the logic is unit-testable (main packages are
// not).
package cli

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	emigre "github.com/why-not-xai/emigre"
)

// Deadline builds the context for one command-line run: bounded by d
// when d > 0, unbounded otherwise. The cancel func must always be
// called.
func Deadline(d time.Duration) (context.Context, context.CancelFunc) {
	if d > 0 {
		return context.WithTimeout(context.Background(), d)
	}
	return context.WithCancel(context.Background())
}

// LoadGraph opens a graph file written by emigre-gen (JSON or TSV by
// extension), or builds the named preset ("books").
func LoadGraph(path, preset string) (*emigre.Graph, error) {
	if preset == "books" {
		b, err := emigre.NewBooks()
		if err != nil {
			return nil, err
		}
		return b.Graph, nil
	}
	if preset != "" {
		return nil, fmt.Errorf("unknown preset %q (only books is built in; use emigre-gen for datasets)", preset)
	}
	if path == "" {
		return nil, fmt.Errorf("either -graph or -preset books is required")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadGraph(f, path)
}

// ReadGraph parses a graph stream, choosing the format from the file
// name extension (".tsv" → TSV, anything else → JSON).
func ReadGraph(r io.Reader, name string) (*emigre.Graph, error) {
	if strings.HasSuffix(name, ".tsv") {
		return emigre.ReadGraphTSV(r)
	}
	return emigre.ReadGraphJSON(r)
}

// ErrNoSuchNode reports a node reference that resolves neither as a
// label nor as a valid numeric ID.
var ErrNoSuchNode = errors.New("no such node")

// ResolveNode resolves a node by label first, then by numeric ID.
func ResolveNode(g *emigre.Graph, arg string) (emigre.NodeID, error) {
	if id, ok := g.NodeByLabel(arg); ok {
		return id, nil
	}
	n, err := strconv.Atoi(arg)
	if err != nil || n < 0 || n >= g.NumNodes() {
		return emigre.InvalidNode, fmt.Errorf("%w: %q is neither a label nor a valid id", ErrNoSuchNode, arg)
	}
	return emigre.NodeID(n), nil
}

// NodeName renders a node as its label, falling back to "node-<id>".
func NodeName(g *emigre.Graph, v emigre.NodeID) string {
	if l := g.Label(v); l != "" {
		return l
	}
	return fmt.Sprintf("node-%d", v)
}

// SplitList splits a comma-separated flag value, trimming blanks.
func SplitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// ParseMode parses a mode name (remove, add, combined, reweight).
func ParseMode(s string) (emigre.Mode, error) {
	switch s {
	case "remove":
		return emigre.Remove, nil
	case "add":
		return emigre.Add, nil
	case "combined":
		return emigre.Combined, nil
	case "reweight":
		return emigre.Reweight, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (want remove, add, combined or reweight)", s)
	}
}

// ParseMethod parses a strategy name.
func ParseMethod(s string) (emigre.Method, error) {
	switch s {
	case "incremental":
		return emigre.Incremental, nil
	case "powerset":
		return emigre.Powerset, nil
	case "exhaustive":
		return emigre.Exhaustive, nil
	case "exhaustive-direct":
		return emigre.ExhaustiveDirect, nil
	case "brute-force":
		return emigre.BruteForce, nil
	default:
		return 0, fmt.Errorf("unknown method %q", s)
	}
}

// NodeTypeIDs resolves comma-separated node type names against the
// graph's registry.
func NodeTypeIDs(g *emigre.Graph, names string) ([]emigre.NodeTypeID, error) {
	var out []emigre.NodeTypeID
	for _, name := range SplitList(names) {
		id, ok := g.Types().LookupNodeType(name)
		if !ok {
			return nil, fmt.Errorf("node type %q not present in the graph", name)
		}
		out = append(out, id)
	}
	return out, nil
}

// EdgeTypeIDs resolves comma-separated edge type names against the
// graph's registry.
func EdgeTypeIDs(g *emigre.Graph, names string) ([]emigre.EdgeTypeID, error) {
	var out []emigre.EdgeTypeID
	for _, name := range SplitList(names) {
		id, ok := g.Types().LookupEdgeType(name)
		if !ok {
			return nil, fmt.Errorf("edge type %q not present in the graph", name)
		}
		out = append(out, id)
	}
	return out, nil
}
