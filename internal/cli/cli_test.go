package cli

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	emigre "github.com/why-not-xai/emigre"
)

func TestLoadGraphPreset(t *testing.T) {
	g, err := LoadGraph("", "books")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g.NodeByLabel("Paul"); !ok {
		t.Fatal("books preset missing Paul")
	}
	if _, err := LoadGraph("", "nope"); err == nil {
		t.Fatal("unknown preset should error")
	}
	if _, err := LoadGraph("", ""); err == nil {
		t.Fatal("no source should error")
	}
	if _, err := LoadGraph("/does/not/exist.json", ""); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestLoadGraphFromFiles(t *testing.T) {
	books, err := emigre.NewBooks()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "g.json")
	tsvPath := filepath.Join(dir, "g.tsv")
	var buf bytes.Buffer
	if err := books.Graph.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(jsonPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := books.Graph.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(tsvPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{jsonPath, tsvPath} {
		g, err := LoadGraph(path, "")
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if g.NumNodes() != books.Graph.NumNodes() {
			t.Fatalf("%s: node count mismatch", path)
		}
	}
}

func TestResolveNode(t *testing.T) {
	g, err := LoadGraph("", "books")
	if err != nil {
		t.Fatal(err)
	}
	paul, err := ResolveNode(g, "Paul")
	if err != nil {
		t.Fatal(err)
	}
	byID, err := ResolveNode(g, "0")
	if err != nil {
		t.Fatal(err)
	}
	if paul != byID {
		t.Fatalf("label and id resolution disagree: %d vs %d", paul, byID)
	}
	if _, err := ResolveNode(g, "Santa"); err == nil {
		t.Fatal("unknown label should error")
	}
	if _, err := ResolveNode(g, "9999"); err == nil {
		t.Fatal("out-of-range id should error")
	}
	if NodeName(g, paul) != "Paul" {
		t.Fatal("NodeName should use the label")
	}
}

func TestSplitList(t *testing.T) {
	got := SplitList(" a, b ,,c ")
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("SplitList = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SplitList[%d] = %q", i, got[i])
		}
	}
	if SplitList("") != nil {
		t.Fatal("empty input should return nil")
	}
}

func TestParseModeMethod(t *testing.T) {
	modes := map[string]emigre.Mode{
		"remove": emigre.Remove, "add": emigre.Add,
		"combined": emigre.Combined, "reweight": emigre.Reweight,
	}
	for name, want := range modes {
		got, err := ParseMode(name)
		if err != nil || got != want {
			t.Fatalf("ParseMode(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Fatal("bogus mode should error")
	}
	methods := map[string]emigre.Method{
		"incremental": emigre.Incremental, "powerset": emigre.Powerset,
		"exhaustive": emigre.Exhaustive, "exhaustive-direct": emigre.ExhaustiveDirect,
		"brute-force": emigre.BruteForce,
	}
	for name, want := range methods {
		got, err := ParseMethod(name)
		if err != nil || got != want {
			t.Fatalf("ParseMethod(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseMethod("bogus"); err == nil {
		t.Fatal("bogus method should error")
	}
}

func TestTypeIDResolution(t *testing.T) {
	g, err := LoadGraph("", "books")
	if err != nil {
		t.Fatal(err)
	}
	nts, err := NodeTypeIDs(g, "user,item")
	if err != nil || len(nts) != 2 {
		t.Fatalf("NodeTypeIDs = %v, %v", nts, err)
	}
	if _, err := NodeTypeIDs(g, "spaceship"); err == nil {
		t.Fatal("unknown node type should error")
	}
	ets, err := EdgeTypeIDs(g, "rated,follows")
	if err != nil || len(ets) != 2 {
		t.Fatalf("EdgeTypeIDs = %v, %v", ets, err)
	}
	if _, err := EdgeTypeIDs(g, "teleport"); err == nil {
		t.Fatal("unknown edge type should error")
	}
}

func TestReadGraphFormatDispatch(t *testing.T) {
	if _, err := ReadGraph(strings.NewReader("not json"), "x.json"); err == nil {
		t.Fatal("bad JSON should error")
	}
	if _, err := ReadGraph(strings.NewReader("bad\tcontent"), "x.tsv"); err == nil {
		t.Fatal("bad TSV should error")
	}
}
