// Package testleak detects goroutines leaked by a test: Check
// snapshots the live goroutines when called and, at cleanup, fails the
// test if goroutines born since are still running.
//
// It is the runtime complement to the static goroleak analyzer
// (internal/lint): goroleak proves each `go` statement carries
// bounded-lifetime evidence at compile time; testleak verifies at run
// time that the bound actually fired before the test returned.
//
//	func TestDrain(t *testing.T) {
//		testleak.Check(t)
//		// ... spawn and drain ...
//	}
//
// Goroutines whose stacks match an allow pattern are ignored: the
// testing framework's own workers, runtime background goroutines and
// os/signal plumbing by default, plus any extra substrings passed to
// Check (matched against the full stack text, so either a function
// name or a file path works).
package testleak

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// retryFor bounds how long Cleanup waits for straggling goroutines to
// finish before declaring them leaked. Shutdown paths legitimately
// take a few scheduler ticks after the test body returns (a drained
// http.Server still tears down its listeners), so a one-shot
// comparison would be flaky.
const retryFor = 5 * time.Second

// allowlist matches goroutines that exist independently of the code
// under test. Substrings are matched against the first function line
// of each stack.
var allowlist = []string{
	"testing.(*T).Run",      // the test runner itself
	"testing.(*M).",         // TestMain machinery
	"testing.runTests",      // top-level driver
	"testing.tRunner",       // per-test goroutine
	"runtime.goexit",        // fully-exited placeholder frames
	"runtime/pprof.",        // profile writers under -cpuprofile
	"os/signal.signal_recv", // signal.Notify watcher, never exits
	"os/signal.loop",        // darwin variant of the same watcher
	"runtime.ReadTrace",     // execution tracer under -trace
	"runtime.(*scavengerState)",
	"runtime.bgsweep",
	"runtime.bgscavenge",
	"runtime.forcegchelper",
	"runtime.gcBgMarkWorker",
}

// Check snapshots the current goroutine set and registers a cleanup
// that fails t if goroutines created after the snapshot are still
// alive once the test (and retry grace period) ends. extraAllow adds
// stack substrings to ignore, for tests that intentionally park
// goroutines beyond their own lifetime.
//
// Call it first in the test, before any goroutine the test should be
// charged for is spawned. Parallel subtests sharing a process will see
// each other's goroutines; use Check only in tests that own their
// concurrency.
func Check(t testing.TB, extraAllow ...string) {
	t.Helper()
	before := snapshot()
	t.Cleanup(func() {
		deadline := time.Now().Add(retryFor)
		var leaked []string
		for {
			leaked = leakedSince(before, extraAllow)
			if len(leaked) == 0 || time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		for _, stack := range leaked {
			t.Errorf("leaked goroutine:\n%s", stack)
		}
	})
}

// snapshot returns the identity set of currently-live goroutines,
// keyed by the header line ("goroutine 12 [running]:") ID.
func snapshot() map[string]bool {
	ids := make(map[string]bool)
	for _, stack := range stacks() {
		ids[goroutineID(stack)] = true
	}
	return ids
}

// leakedSince returns the stacks of goroutines not in before and not
// matched by the allowlist or extraAllow.
func leakedSince(before map[string]bool, extraAllow []string) []string {
	var leaked []string
	for _, stack := range stacks() {
		if before[goroutineID(stack)] || allowed(stack, extraAllow) {
			continue
		}
		leaked = append(leaked, stack)
	}
	return leaked
}

// stacks captures all goroutine stacks, growing the buffer until the
// dump fits, and splits them into per-goroutine blocks. The calling
// goroutine's own stack is excluded.
func stacks() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	self := goroutineID(string(buf))
	var out []string
	for _, block := range strings.Split(string(buf), "\n\n") {
		if block == "" || goroutineID(block) == self {
			continue
		}
		out = append(out, block)
	}
	return out
}

// goroutineID extracts "goroutine N" from a stack block's header.
func goroutineID(stack string) string {
	header, _, _ := strings.Cut(stack, "\n")
	var id int
	if _, err := fmt.Sscanf(header, "goroutine %d ", &id); err != nil {
		return header
	}
	return fmt.Sprintf("goroutine %d", id)
}

// allowed reports whether the stack matches the built-in allowlist
// (first function frame) or any extraAllow substring (full text).
func allowed(stack string, extraAllow []string) bool {
	_, rest, _ := strings.Cut(stack, "\n")
	firstFunc, _, _ := strings.Cut(rest, "\n")
	firstFunc = strings.TrimSpace(firstFunc)
	for _, pat := range allowlist {
		if strings.Contains(firstFunc, pat) {
			return true
		}
	}
	for _, pat := range extraAllow {
		if strings.Contains(stack, pat) {
			return true
		}
	}
	return false
}
