package testleak

import (
	"strings"
	"testing"
	"time"
)

// TestCleanTestPasses spawns a bounded goroutine and checks the diff
// comes back empty once it exits.
func TestCleanTestPasses(t *testing.T) {
	before := snapshot()
	done := make(chan struct{})
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(done)
	}()
	<-done
	deadline := time.Now().Add(retryFor)
	for {
		if leaked := leakedSince(before, nil); len(leaked) == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("bounded goroutine still reported leaked: %v", leakedSince(before, nil))
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestLeakIsDetected parks a goroutine past the snapshot diff and
// checks it is reported, then releases it. The retry loop is bypassed
// by calling leakedSince directly — waiting retryFor for a goroutine
// we know is parked would just slow the suite.
func TestLeakIsDetected(t *testing.T) {
	before := snapshot()
	block := make(chan struct{})
	started := make(chan struct{})
	go func() {
		close(started)
		<-block
	}()
	<-started
	leaked := leakedSince(before, nil)
	if len(leaked) != 1 {
		t.Fatalf("leaked = %d stacks, want 1:\n%s", len(leaked), strings.Join(leaked, "\n\n"))
	}
	if !strings.Contains(leaked[0], "testleak.TestLeakIsDetected") {
		t.Errorf("leaked stack does not name the spawner:\n%s", leaked[0])
	}
	// The same stack must be suppressible via extraAllow.
	if rem := leakedSince(before, []string{"TestLeakIsDetected"}); len(rem) != 0 {
		t.Errorf("extraAllow did not suppress the stack: %v", rem)
	}
	close(block)
}

// TestCheckIntegration exercises the real Check/Cleanup path: the
// subtest spawns a bounded goroutine and must pass.
func TestCheckIntegration(t *testing.T) {
	passed := t.Run("inner", func(t *testing.T) {
		Check(t)
		done := make(chan struct{})
		go func() { close(done) }()
		<-done
	})
	if !passed {
		t.Error("clean subtest failed the leak check")
	}
}
