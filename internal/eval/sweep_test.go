package eval

import (
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/why-not-xai/emigre/internal/dataset"
	"github.com/why-not-xai/emigre/internal/emigre"
	"github.com/why-not-xai/emigre/internal/rec"
)

// TestRunSweepContextCancellation pins the fix for the unbounded sweep:
// a context canceled during variant 1 must stop the sweep before
// variant 2 is built and evaluated, instead of silently running every
// remaining point to completion (this test hangs on the count check
// against pre-fix RunSweep, which has no cancellation seam at all).
func TestRunSweepContextCancellation(t *testing.T) {
	cfg := dataset.SmallConfig()
	cfg.Users = 10
	cfg.Items = 100
	cfg.Categories = 4
	a, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := rec.DefaultConfig(a.Types.Item)
	base.PPR.Epsilon = 1e-6
	second := base
	second.Beta = 1
	variants := []SweepVariant{
		{Label: "first", Rec: base},
		{Label: "second", Rec: second},
	}

	ctx, cancel := context.WithCancel(context.Background())
	evaluated := 0
	sweep, err := RunSweepContext(ctx, a.Graph, variants, Config{
		Users:               a.Users[:2],
		TopN:                4,
		MaxScenariosPerUser: 1,
		Methods:             fastMethods()[:1],
		Explainer: emigre.Options{
			AllowedEdgeTypes: a.UserActionEdgeTypes(),
			AddEdgeType:      a.Types.Reviewed,
			MaxTests:         10,
		},
		// Progress fires per (scenario, method) pair within a variant's
		// run; canceling here lands mid-variant-1, so the pre-variant-2
		// poll is the seam that must stop the sweep.
		Progress: func(done, total int) {
			evaluated++
			cancel()
		},
	})
	if err == nil {
		t.Fatal("canceled sweep must return an error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), `before variant "second"`) {
		t.Fatalf("error must name the variant the sweep stopped at: %v", err)
	}
	if len(sweep) != 1 || sweep[0].Label != "first" {
		t.Fatalf("completed variants = %+v, want exactly the first", sweep)
	}
	firstRuns := evaluated
	if firstRuns == 0 {
		t.Fatal("variant 1 must have evaluated at least one pair")
	}
}

// TestRunSweepContextBackground pins that the delegating RunSweep path
// (background context) is unchanged by the cancellation plumbing.
func TestRunSweepContextBackground(t *testing.T) {
	cfg := dataset.SmallConfig()
	cfg.Users = 8
	cfg.Items = 80
	cfg.Categories = 3
	a, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := rec.DefaultConfig(a.Types.Item)
	base.PPR.Epsilon = 1e-6
	sweep, err := RunSweepContext(context.Background(), a.Graph,
		[]SweepVariant{{Label: "only", Rec: base}}, Config{
			Users:               a.Users[:1],
			TopN:                3,
			MaxScenariosPerUser: 1,
			Methods:             fastMethods()[:1],
			Explainer: emigre.Options{
				AllowedEdgeTypes: a.UserActionEdgeTypes(),
				AddEdgeType:      a.Types.Reviewed,
				MaxTests:         10,
			},
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != 1 {
		t.Fatalf("sweep points = %d, want 1", len(sweep))
	}
}
