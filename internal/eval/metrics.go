package eval

import (
	"sort"
	"time"
)

// MethodStats aggregates one method's outcomes across all scenarios.
type MethodStats struct {
	Method    MethodSpec
	Scenarios int
	// Found counts returned explanations; Correct counts the verified
	// ones (the success-rate numerator).
	Found   int
	Correct int
	Errors  int

	// SuccessRate is Correct / Scenarios (Figure 4).
	SuccessRate float64

	// AvgSize is the mean explanation size over correct outcomes
	// (Figure 6).
	AvgSize float64

	// Runtime columns of Table 5: (a) overall, (b) when an explanation
	// was found, (c) when none was found.
	AvgTime         time.Duration
	AvgTimeFound    time.Duration
	AvgTimeNotFound time.Duration

	// P50Time and P95Time are overall runtime percentiles — tail
	// behaviour the paper's averages hide (brute force's column (c) is
	// pure tail).
	P50Time time.Duration
	P95Time time.Duration
}

// Stats aggregates per-method statistics in the order the methods first
// appear in the outcomes.
func (r *Results) Stats() []MethodStats {
	order := []string{}
	byName := map[string]*MethodStats{}
	for _, o := range r.Outcomes {
		st := byName[o.Method.Name]
		if st == nil {
			st = &MethodStats{Method: o.Method}
			byName[o.Method.Name] = st
			order = append(order, o.Method.Name)
		}
		st.Scenarios++
		if o.Err != "" {
			st.Errors++
		}
		if o.Found {
			st.Found++
		}
		if o.Correct {
			st.Correct++
		}
	}
	type acc struct {
		all, found, notFound      time.Duration
		nAll, nFound, nNot, sizeN int
		sizeSum                   int
		durations                 []time.Duration
	}
	accs := map[string]*acc{}
	for _, o := range r.Outcomes {
		a := accs[o.Method.Name]
		if a == nil {
			a = &acc{}
			accs[o.Method.Name] = a
		}
		a.all += o.Duration
		a.nAll++
		a.durations = append(a.durations, o.Duration)
		if o.Found {
			a.found += o.Duration
			a.nFound++
		} else {
			a.notFound += o.Duration
			a.nNot++
		}
		if o.Correct {
			a.sizeSum += o.Size
			a.sizeN++
		}
	}
	out := make([]MethodStats, 0, len(order))
	for _, name := range order {
		st := byName[name]
		a := accs[name]
		if st.Scenarios > 0 {
			st.SuccessRate = float64(st.Correct) / float64(st.Scenarios)
		}
		if a.nAll > 0 {
			st.AvgTime = a.all / time.Duration(a.nAll)
		}
		if a.nFound > 0 {
			st.AvgTimeFound = a.found / time.Duration(a.nFound)
		}
		if a.nNot > 0 {
			st.AvgTimeNotFound = a.notFound / time.Duration(a.nNot)
		}
		if a.sizeN > 0 {
			st.AvgSize = float64(a.sizeSum) / float64(a.sizeN)
		}
		if len(a.durations) > 0 {
			sort.Slice(a.durations, func(i, j int) bool { return a.durations[i] < a.durations[j] })
			st.P50Time = percentile(a.durations, 0.50)
			st.P95Time = percentile(a.durations, 0.95)
		}
		out = append(out, *st)
	}
	return out
}

// percentile returns the p-quantile of sorted durations using the
// nearest-rank method.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// StatsFor returns the aggregated stats of one method by name.
func (r *Results) StatsFor(name string) (MethodStats, bool) {
	for _, st := range r.Stats() {
		if st.Method.Name == name {
			return st, true
		}
	}
	return MethodStats{}, false
}

// scenarioKey identifies a scenario across methods.
type scenarioKey struct {
	user, wni int32
}

// RelativeSuccess computes Figure 5: each method's success rate
// restricted to the scenarios the baseline method solved (i.e., where a
// solution is known to exist). The baseline itself scores 1 by
// definition. Methods are returned in first-appearance order; the
// baseline must be present in the outcomes.
func (r *Results) RelativeSuccess(baseline string) (map[string]float64, int) {
	solvable := map[scenarioKey]bool{}
	for _, o := range r.Outcomes {
		if o.Method.Name == baseline && o.Correct {
			solvable[scenarioKey{int32(o.Scenario.User), int32(o.Scenario.WNI)}] = true
		}
	}
	counts := map[string]int{}
	correct := map[string]int{}
	for _, o := range r.Outcomes {
		if !solvable[scenarioKey{int32(o.Scenario.User), int32(o.Scenario.WNI)}] {
			continue
		}
		counts[o.Method.Name]++
		if o.Correct {
			correct[o.Method.Name]++
		}
	}
	out := map[string]float64{}
	for name, n := range counts {
		if n > 0 {
			out[name] = float64(correct[name]) / float64(n)
		}
	}
	return out, len(solvable)
}

// SizeDistribution returns the sorted explanation sizes of one method's
// correct outcomes.
func (r *Results) SizeDistribution(name string) []int {
	var sizes []int
	for _, o := range r.Outcomes {
		if o.Method.Name == name && o.Correct {
			sizes = append(sizes, o.Size)
		}
	}
	sort.Ints(sizes)
	return sizes
}
