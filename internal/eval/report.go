package eval

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"github.com/why-not-xai/emigre/internal/hin"
)

const barWidth = 30

func bar(frac float64) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	full := int(frac*barWidth + 0.5)
	return strings.Repeat("█", full) + strings.Repeat("░", barWidth-full)
}

// RenderTable4 prints the per-node-type degree statistics of the
// evaluation graph — the paper's Table 4.
func RenderTable4(w io.Writer, g hin.View) error {
	if _, err := fmt.Fprintln(w, "Table 4: Node degree statistics per node type in the graph."); err != nil {
		return err
	}
	_, err := fmt.Fprint(w, hin.FormatDegreeStats(hin.DegreeStats(g)))
	return err
}

// RenderFigure4 prints the success rate per method — the paper's
// Figure 4.
func RenderFigure4(w io.Writer, r *Results) error {
	if _, err := fmt.Fprintln(w, "Figure 4: Explanation success rate per method."); err != nil {
		return err
	}
	for _, st := range r.Stats() {
		if _, err := fmt.Fprintf(w, " %-20s %s %6.1f%%  (%d/%d correct, %d returned, %d errors)\n",
			st.Method.Name, bar(st.SuccessRate), 100*st.SuccessRate,
			st.Correct, st.Scenarios, st.Found, st.Errors); err != nil {
			return err
		}
	}
	return nil
}

// RenderFigure5 prints each remove-mode method's success rate relative
// to the brute-force oracle — the paper's Figure 5.
func RenderFigure5(w io.Writer, r *Results) error {
	rel, solvable := r.RelativeSuccess(BaselineName)
	if _, err := fmt.Fprintf(w,
		"Figure 5: Explanation success rate relative to brute force (remove mode, %d solvable scenarios).\n",
		solvable); err != nil {
		return err
	}
	for _, st := range r.Stats() {
		frac, ok := rel[st.Method.Name]
		if !ok || st.Method.Mode.String() != "remove" {
			continue
		}
		if _, err := fmt.Fprintf(w, " %-20s %s %6.1f%%\n", st.Method.Name, bar(frac), 100*frac); err != nil {
			return err
		}
	}
	return nil
}

// RenderFigure6 prints the average explanation size per method — the
// paper's Figure 6.
func RenderFigure6(w io.Writer, r *Results) error {
	if _, err := fmt.Fprintln(w, "Figure 6: Average explanation size per method."); err != nil {
		return err
	}
	maxSize := 1.0
	stats := r.Stats()
	for _, st := range stats {
		if st.AvgSize > maxSize {
			maxSize = st.AvgSize
		}
	}
	for _, st := range stats {
		if _, err := fmt.Fprintf(w, " %-20s %s %5.2f edges  (over %d correct)\n",
			st.Method.Name, bar(st.AvgSize/maxSize), st.AvgSize, st.Correct); err != nil {
			return err
		}
	}
	return nil
}

// RenderTable5 prints the average runtimes per method — the paper's
// Table 5: (a) overall, (b) when an explanation is found, (c) when none
// is found.
func RenderTable5(w io.Writer, r *Results) error {
	if _, err := fmt.Fprintln(w, "Table 5: Average runtime per method, (a) overall, (b) found, (c) not found."); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, " %-20s %12s %12s %12s %12s %12s\n", "Method", "(a)", "(b)", "(c)", "p50", "p95"); err != nil {
		return err
	}
	for _, st := range r.Stats() {
		if _, err := fmt.Fprintf(w, " %-20s %12s %12s %12s %12s %12s\n",
			st.Method.Name, fmtDur(st.AvgTime), fmtDur(st.AvgTimeFound), fmtDur(st.AvgTimeNotFound),
			fmtDur(st.P50Time), fmtDur(st.P95Time)); err != nil {
			return err
		}
	}
	return nil
}

func fmtDur(d time.Duration) string {
	if d == 0 {
		return "-"
	}
	return d.Round(10 * time.Microsecond).String()
}

// WriteCSV exports every outcome as one CSV row for downstream
// analysis.
func (r *Results) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"method", "mode", "user", "wni", "rec", "rank",
		"found", "correct", "size", "duration_us", "error",
	}); err != nil {
		return err
	}
	for _, o := range r.Outcomes {
		rec := []string{
			o.Method.Name,
			o.Method.Mode.String(),
			strconv.Itoa(int(o.Scenario.User)),
			strconv.Itoa(int(o.Scenario.WNI)),
			strconv.Itoa(int(o.Scenario.Rec)),
			strconv.Itoa(o.Scenario.Rank),
			strconv.FormatBool(o.Found),
			strconv.FormatBool(o.Correct),
			strconv.Itoa(o.Size),
			strconv.FormatInt(o.Duration.Microseconds(), 10),
			o.Err,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
