package eval

import (
	"testing"

	"github.com/why-not-xai/emigre/internal/dataset"
	"github.com/why-not-xai/emigre/internal/emigre"
	"github.com/why-not-xai/emigre/internal/rec"
)

// TestParallelRunMatchesSerial runs the same configuration serially and
// with four workers: outcome correctness flags and sizes must be
// identical pairwise (durations naturally differ).
func TestParallelRunMatchesSerial(t *testing.T) {
	cfg := dataset.SmallConfig()
	cfg.Users = 12
	cfg.Items = 120
	cfg.Categories = 4
	a, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rcfg := rec.DefaultConfig(a.Types.Item)
	rcfg.PPR.Epsilon = 1e-6
	r, err := rec.New(a.Graph, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	rn := NewRunner(a.Graph, r)
	base := Config{
		Users:               a.Users[:6],
		TopN:                4,
		MaxScenariosPerUser: 2,
		Methods:             fastMethods(),
		Explainer: emigre.Options{
			AllowedEdgeTypes: a.UserActionEdgeTypes(),
			AddEdgeType:      a.Types.Reviewed,
			MaxTests:         30,
		},
	}
	serial, err := rn.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	// Three ways to spend the same budget: all of it on scenario fan-out,
	// split between scenarios and per-query CHECK workers, and all of it
	// inside each query's CHECK pipeline. Every split must reproduce the
	// serial outcomes exactly.
	for _, split := range []struct {
		name         string
		checkWorkers int
	}{
		{"scenario-only", 0},
		{"split-2x2", 2},
		{"check-only", 4},
	} {
		par := base
		par.Workers = 4
		par.CheckWorkers = split.checkWorkers
		parallel, err := rn.Run(par)
		if err != nil {
			t.Fatal(err)
		}
		if len(serial.Outcomes) != len(parallel.Outcomes) {
			t.Fatalf("%s: outcome counts differ: %d vs %d", split.name, len(serial.Outcomes), len(parallel.Outcomes))
		}
		for i := range serial.Outcomes {
			s, p := serial.Outcomes[i], parallel.Outcomes[i]
			if s.Method.Name != p.Method.Name || s.Scenario != p.Scenario {
				t.Fatalf("%s: outcome %d misaligned: %s/%v vs %s/%v", split.name, i, s.Method.Name, s.Scenario, p.Method.Name, p.Scenario)
			}
			if s.Found != p.Found || s.Correct != p.Correct || s.Size != p.Size {
				t.Fatalf("%s: outcome %d differs: serial %+v vs parallel %+v", split.name, i, s, p)
			}
		}
	}
}

func TestParallelProgressSerialized(t *testing.T) {
	cfg := dataset.SmallConfig()
	cfg.Users = 8
	cfg.Items = 80
	cfg.Categories = 4
	a, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rcfg := rec.DefaultConfig(a.Types.Item)
	rcfg.PPR.Epsilon = 1e-6
	r, err := rec.New(a.Graph, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	rn := NewRunner(a.Graph, r)
	calls := 0
	maxDone := 0
	res, err := rn.Run(Config{
		Users:               a.Users[:4],
		TopN:                3,
		MaxScenariosPerUser: 2,
		Methods:             fastMethods()[:2],
		Workers:             8, // more workers than jobs is fine
		Explainer: emigre.Options{
			AllowedEdgeTypes: a.UserActionEdgeTypes(),
			AddEdgeType:      a.Types.Reviewed,
			MaxTests:         10,
		},
		Progress: func(done, total int) {
			calls++ // serialized by the harness; no atomic needed
			if done > maxDone {
				maxDone = done
			}
			if done > total {
				t.Errorf("done %d > total %d", done, total)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != len(res.Outcomes) || maxDone != len(res.Outcomes) {
		t.Fatalf("progress calls %d (max done %d), want %d", calls, maxDone, len(res.Outcomes))
	}
}
