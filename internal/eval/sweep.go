package eval

import (
	"context"
	"fmt"
	"io"

	"github.com/why-not-xai/emigre/internal/hin"
	"github.com/why-not-xai/emigre/internal/rec"
)

// SweepVariant pairs a label with a recommender configuration, for
// hyper-parameter ablations (α, β, ε — the design choices of §6.1).
type SweepVariant struct {
	Label string
	Rec   rec.Config
}

// SweepResult is one variant's evaluation outcome.
type SweepResult struct {
	Label   string
	Results *Results
}

// RunSweep evaluates the same scenario configuration under several
// recommender configurations. Note that scenarios are re-enumerated
// per variant — changing α or β changes the recommendation lists, so
// the Why-Not questions themselves legitimately differ across points.
func RunSweep(g *hin.Graph, variants []SweepVariant, cfg Config) ([]SweepResult, error) {
	return RunSweepContext(context.Background(), g, variants, cfg)
}

// RunSweepContext is RunSweep with cancellation: the context is
// polled before each variant, so a canceled sweep stops between
// variants instead of building and evaluating every remaining point.
// It returns ctx's error (wrapped with the position the sweep stopped
// at) and the results of the variants completed before cancellation.
func RunSweepContext(ctx context.Context, g *hin.Graph, variants []SweepVariant, cfg Config) ([]SweepResult, error) {
	if len(variants) == 0 {
		return nil, fmt.Errorf("eval: sweep needs at least one variant")
	}
	out := make([]SweepResult, 0, len(variants))
	for i, v := range variants {
		if err := ctx.Err(); err != nil {
			return out, fmt.Errorf("eval: sweep canceled before variant %q (%d/%d done): %w",
				v.Label, i, len(variants), err)
		}
		r, err := rec.New(g, v.Rec)
		if err != nil {
			return nil, fmt.Errorf("eval: variant %q: %w", v.Label, err)
		}
		res, err := NewRunner(g, r).Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("eval: variant %q: %w", v.Label, err)
		}
		out = append(out, SweepResult{Label: v.Label, Results: res})
	}
	return out, nil
}

// RenderSweep prints one success-rate row per (variant, method) pair.
func RenderSweep(w io.Writer, sweep []SweepResult) error {
	if _, err := fmt.Fprintln(w, "Hyper-parameter sweep: success rate per variant and method."); err != nil {
		return err
	}
	for _, point := range sweep {
		for _, st := range point.Results.Stats() {
			if _, err := fmt.Fprintf(w, " %-16s %-20s %s %6.1f%%  (avg size %.2f, avg time %s)\n",
				point.Label, st.Method.Name, bar(st.SuccessRate), 100*st.SuccessRate,
				st.AvgSize, fmtDur(st.AvgTime)); err != nil {
				return err
			}
		}
	}
	return nil
}
