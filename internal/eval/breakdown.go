package eval

import (
	"fmt"
	"io"
	"sort"
)

// RateCount is a success counter.
type RateCount struct {
	Correct int
	Total   int
}

// Rate returns Correct/Total (0 when empty).
func (rc RateCount) Rate() float64 {
	if rc.Total == 0 {
		return 0
	}
	return float64(rc.Correct) / float64(rc.Total)
}

// RankBreakdown splits one method's success rate by the Why-Not item's
// original rank in the recommendation list. The paper's "popular item"
// discussion (§6.4) predicts lower success for deeper ranks: the
// further WNI sits from the top, the more competitors the explanation
// must displace.
func (r *Results) RankBreakdown(method string) map[int]RateCount {
	out := make(map[int]RateCount)
	for _, o := range r.Outcomes {
		if o.Method.Name != method {
			continue
		}
		rc := out[o.Scenario.Rank]
		rc.Total++
		if o.Correct {
			rc.Correct++
		}
		out[o.Scenario.Rank] = rc
	}
	return out
}

// ActivityBreakdown splits one method's success rate by user activity
// (the scenario's recorded action count), using the given bucket upper
// bounds (e.g. []int{10, 20, 40} buckets into ≤10, ≤20, ≤40, >40).
// It mirrors the paper's cold-start analysis: low-activity users leave
// Remove mode little to work with.
func (r *Results) ActivityBreakdown(method string, bounds []int) map[string]RateCount {
	sorted := append([]int(nil), bounds...)
	sort.Ints(sorted)
	label := func(actions int) string {
		for _, b := range sorted {
			if actions <= b {
				return fmt.Sprintf("<=%d", b)
			}
		}
		if len(sorted) == 0 {
			return "all"
		}
		return fmt.Sprintf(">%d", sorted[len(sorted)-1])
	}
	out := make(map[string]RateCount)
	for _, o := range r.Outcomes {
		if o.Method.Name != method {
			continue
		}
		l := label(o.Scenario.Actions)
		rc := out[l]
		rc.Total++
		if o.Correct {
			rc.Correct++
		}
		out[l] = rc
	}
	return out
}

// RenderRankBreakdown prints the per-rank success rates of each method.
func RenderRankBreakdown(w io.Writer, r *Results) error {
	if _, err := fmt.Fprintln(w, "Success rate by Why-Not item rank."); err != nil {
		return err
	}
	for _, st := range r.Stats() {
		br := r.RankBreakdown(st.Method.Name)
		ranks := make([]int, 0, len(br))
		for rank := range br {
			ranks = append(ranks, rank)
		}
		sort.Ints(ranks)
		if _, err := fmt.Fprintf(w, " %-20s", st.Method.Name); err != nil {
			return err
		}
		for _, rank := range ranks {
			rc := br[rank]
			if _, err := fmt.Fprintf(w, "  r%d: %5.1f%% (%d)", rank, 100*rc.Rate(), rc.Total); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteMarkdown renders the whole evaluation as a Markdown document:
// the Table-4 shape is omitted (graph-level, see RenderTable4), the
// figures become tables.
func (r *Results) WriteMarkdown(w io.Writer) error {
	stats := r.Stats()
	if _, err := fmt.Fprintf(w, "## Figure 4 — success rate per method\n\n| method | success | correct | returned | scenarios |\n|---|---|---|---|---|\n"); err != nil {
		return err
	}
	for _, st := range stats {
		if _, err := fmt.Fprintf(w, "| %s | %.1f%% | %d | %d | %d |\n",
			st.Method.Name, 100*st.SuccessRate, st.Correct, st.Found, st.Scenarios); err != nil {
			return err
		}
	}
	rel, solvable := r.RelativeSuccess(BaselineName)
	if _, err := fmt.Fprintf(w, "\n## Figure 5 — relative to brute force (%d solvable)\n\n", solvable); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "| method | relative success |\n|---|---|\n"); err != nil {
		return err
	}
	for _, st := range stats {
		if frac, ok := rel[st.Method.Name]; ok && st.Method.Mode.String() == "remove" {
			if _, err := fmt.Fprintf(w, "| %s | %.1f%% |\n", st.Method.Name, 100*frac); err != nil {
				return err
			}
		}
	}
	if _, err := fmt.Fprintf(w, "\n## Figure 6 — average explanation size\n\n| method | avg size |\n|---|---|\n"); err != nil {
		return err
	}
	for _, st := range stats {
		if _, err := fmt.Fprintf(w, "| %s | %.2f |\n", st.Method.Name, st.AvgSize); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "\n## Table 5 — runtime (a overall / b found / c not found)\n\n| method | (a) | (b) | (c) |\n|---|---|---|---|\n"); err != nil {
		return err
	}
	for _, st := range stats {
		if _, err := fmt.Fprintf(w, "| %s | %s | %s | %s |\n",
			st.Method.Name, fmtDur(st.AvgTime), fmtDur(st.AvgTimeFound), fmtDur(st.AvgTimeNotFound)); err != nil {
			return err
		}
	}
	return nil
}
