package eval

import (
	"bytes"
	"strings"
	"testing"

	"github.com/why-not-xai/emigre/internal/dataset"
	"github.com/why-not-xai/emigre/internal/emigre"
	"github.com/why-not-xai/emigre/internal/hin"
	"github.com/why-not-xai/emigre/internal/rec"
)

// tinyRun builds a small dataset and runs a two-method evaluation.
func tinyRun(t *testing.T, methods []MethodSpec, users int) (*Results, *dataset.Amazon) {
	t.Helper()
	cfg := dataset.SmallConfig()
	cfg.Users = 16
	cfg.Items = 150
	cfg.Categories = 5
	a, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rcfg := rec.DefaultConfig(a.Types.Item)
	rcfg.PPR.Epsilon = 1e-6
	r, err := rec.New(a.Graph, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	rn := NewRunner(a.Graph, r)
	res, err := rn.Run(Config{
		Users:               a.Users[:users],
		TopN:                5,
		MaxScenariosPerUser: 2,
		Methods:             methods,
		Explainer: emigre.Options{
			AllowedEdgeTypes: a.UserActionEdgeTypes(),
			AddEdgeType:      a.Types.Reviewed,
			MaxTests:         20,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, a
}

func fastMethods() []MethodSpec {
	return []MethodSpec{
		{Name: "remove_incremental", Mode: emigre.Remove, Method: emigre.Incremental},
		{Name: "remove_brute", Mode: emigre.Remove, Method: emigre.BruteForce},
		{Name: "add_incremental", Mode: emigre.Add, Method: emigre.Incremental},
	}
}

func TestScenarioEnumeration(t *testing.T) {
	res, a := tinyRun(t, fastMethods(), 6)
	if len(res.Scenarios) == 0 {
		t.Fatal("no scenarios enumerated")
	}
	for _, sc := range res.Scenarios {
		if sc.WNI == sc.Rec {
			t.Fatal("WNI equals the recommendation")
		}
		if sc.Rank < 2 {
			t.Fatalf("rank %d below 2: position 1 is the recommendation itself", sc.Rank)
		}
		if a.Graph.HasEdge(sc.User, sc.WNI) {
			t.Fatal("scenario WNI already interacted with")
		}
	}
	// At most MaxScenariosPerUser per user.
	perUser := map[hin.NodeID]int{}
	for _, sc := range res.Scenarios {
		perUser[sc.User]++
	}
	for u, n := range perUser {
		if n > 2 {
			t.Fatalf("user %d has %d scenarios, cap 2", u, n)
		}
	}
}

func TestOutcomesConsistent(t *testing.T) {
	res, _ := tinyRun(t, fastMethods(), 6)
	if len(res.Outcomes) != len(res.Scenarios)*3 {
		t.Fatalf("outcomes %d != scenarios %d × methods 3", len(res.Outcomes), len(res.Scenarios))
	}
	for _, o := range res.Outcomes {
		if o.Err != "" {
			t.Fatalf("unexpected error outcome: %+v", o)
		}
		if o.Correct && !o.Found {
			t.Fatal("correct but not found")
		}
		if o.Found && o.Size == 0 {
			t.Fatal("found explanation with size 0")
		}
		if o.Duration <= 0 {
			t.Fatal("missing duration")
		}
		// CHECK-guarded methods: found implies correct.
		if o.Method.Method != emigre.ExhaustiveDirect && o.Found != o.Correct {
			t.Fatalf("verified method has Found=%v Correct=%v", o.Found, o.Correct)
		}
	}
}

func TestStatsAggregation(t *testing.T) {
	res, _ := tinyRun(t, fastMethods(), 6)
	stats := res.Stats()
	if len(stats) != 3 {
		t.Fatalf("got %d stats rows, want 3", len(stats))
	}
	for _, st := range stats {
		if st.Scenarios != len(res.Scenarios) {
			t.Fatalf("%s scenario count %d != %d", st.Method.Name, st.Scenarios, len(res.Scenarios))
		}
		if st.SuccessRate < 0 || st.SuccessRate > 1 {
			t.Fatalf("success rate %g out of range", st.SuccessRate)
		}
		if st.Correct > 0 && st.AvgSize < 1 {
			t.Fatalf("%s: avg size %g below 1 with %d correct", st.Method.Name, st.AvgSize, st.Correct)
		}
		if st.AvgTime <= 0 {
			t.Fatal("missing average time")
		}
	}
	if _, ok := res.StatsFor("remove_brute"); !ok {
		t.Fatal("StatsFor(remove_brute) missing")
	}
	if _, ok := res.StatsFor("nope"); ok {
		t.Fatal("StatsFor(nope) should not resolve")
	}
}

func TestRelativeSuccessAgainstBrute(t *testing.T) {
	res, _ := tinyRun(t, fastMethods(), 8)
	rel, solvable := res.RelativeSuccess("remove_brute")
	if solvable == 0 {
		t.Skip("no solvable scenarios in this tiny run")
	}
	if got := rel["remove_brute"]; got != 1 {
		t.Fatalf("baseline relative success = %g, want 1", got)
	}
	for name, frac := range rel {
		if frac < 0 || frac > 1 {
			t.Fatalf("%s relative success %g out of range", name, frac)
		}
	}
}

func TestOverridesChangeBudget(t *testing.T) {
	cfg := dataset.SmallConfig()
	cfg.Users = 10
	cfg.Items = 100
	cfg.Categories = 4
	a, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rcfg := rec.DefaultConfig(a.Types.Item)
	rcfg.PPR.Epsilon = 1e-6
	r, err := rec.New(a.Graph, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	rn := NewRunner(a.Graph, r)
	methods := []MethodSpec{{Name: "remove_brute", Mode: emigre.Remove, Method: emigre.BruteForce}}
	base := emigre.Options{AllowedEdgeTypes: a.UserActionEdgeTypes(), AddEdgeType: a.Types.Reviewed, MaxTests: 1}
	starved, err := rn.Run(Config{Users: a.Users[:6], TopN: 4, MaxScenariosPerUser: 2, Methods: methods, Explainer: base})
	if err != nil {
		t.Fatal(err)
	}
	generous := base
	generous.MaxTests = 500
	funded, err := rn.Run(Config{
		Users: a.Users[:6], TopN: 4, MaxScenariosPerUser: 2, Methods: methods,
		Explainer: base,
		Overrides: map[string]emigre.Options{"remove_brute": generous},
	})
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := starved.StatsFor("remove_brute")
	s2, _ := funded.StatsFor("remove_brute")
	if s2.Correct < s1.Correct {
		t.Fatalf("bigger budget found fewer explanations: %d vs %d", s2.Correct, s1.Correct)
	}
}

func TestProgressCallback(t *testing.T) {
	calls := 0
	last := 0
	cfg := dataset.SmallConfig()
	cfg.Users = 8
	cfg.Items = 80
	cfg.Categories = 4
	a, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rcfg := rec.DefaultConfig(a.Types.Item)
	rcfg.PPR.Epsilon = 1e-6
	r, err := rec.New(a.Graph, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	rn := NewRunner(a.Graph, r)
	res, err := rn.Run(Config{
		Users: a.Users[:4], TopN: 3, MaxScenariosPerUser: 1,
		Methods:   fastMethods()[:1],
		Explainer: emigre.Options{AllowedEdgeTypes: a.UserActionEdgeTypes(), AddEdgeType: a.Types.Reviewed, MaxTests: 5},
		Progress: func(done, total int) {
			calls++
			if done <= last {
				t.Fatal("progress not monotone")
			}
			last = done
			if done > total {
				t.Fatal("done exceeds total")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != len(res.Outcomes) {
		t.Fatalf("progress called %d times, want %d", calls, len(res.Outcomes))
	}
}

func TestRenderers(t *testing.T) {
	res, a := tinyRun(t, fastMethods(), 6)
	var buf bytes.Buffer
	if err := RenderTable4(&buf, a.Graph); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table 4") || !strings.Contains(buf.String(), "user") {
		t.Fatalf("Table 4 output wrong:\n%s", buf.String())
	}
	buf.Reset()
	if err := RenderFigure4(&buf, res); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, m := range fastMethods() {
		if !strings.Contains(out, m.Name) {
			t.Fatalf("Figure 4 missing method %s:\n%s", m.Name, out)
		}
	}
	buf.Reset()
	if err := RenderFigure5(&buf, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "relative to brute force") {
		t.Fatalf("Figure 5 output wrong:\n%s", buf.String())
	}
	if strings.Contains(buf.String(), "add_incremental") {
		t.Fatal("Figure 5 must only show remove-mode methods")
	}
	buf.Reset()
	if err := RenderFigure6(&buf, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "explanation size") {
		t.Fatalf("Figure 6 output wrong:\n%s", buf.String())
	}
	buf.Reset()
	if err := RenderTable5(&buf, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "(a)") || !strings.Contains(buf.String(), "remove_brute") {
		t.Fatalf("Table 5 output wrong:\n%s", buf.String())
	}
}

func TestWriteCSV(t *testing.T) {
	res, _ := tinyRun(t, fastMethods()[:1], 4)
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(res.Outcomes)+1 {
		t.Fatalf("CSV has %d lines, want %d", len(lines), len(res.Outcomes)+1)
	}
	if !strings.HasPrefix(lines[0], "method,mode,user") {
		t.Fatalf("CSV header wrong: %s", lines[0])
	}
}

func TestSizeDistribution(t *testing.T) {
	res, _ := tinyRun(t, fastMethods(), 8)
	sizes := res.SizeDistribution("remove_incremental")
	for i := 1; i < len(sizes); i++ {
		if sizes[i-1] > sizes[i] {
			t.Fatal("sizes not sorted")
		}
	}
	for _, s := range sizes {
		if s < 1 {
			t.Fatalf("size %d below 1", s)
		}
	}
}

func TestPaperMethodsComplete(t *testing.T) {
	ms := PaperMethods()
	if len(ms) != 8 {
		t.Fatalf("PaperMethods has %d entries, want 8", len(ms))
	}
	names := map[string]bool{}
	for _, m := range ms {
		names[m.Name] = true
	}
	for _, want := range []string{
		"add_incremental", "add_powerset", "add_ex",
		"remove_incremental", "remove_powerset", "remove_ex",
		"remove_ex_direct", "remove_brute",
	} {
		if !names[want] {
			t.Fatalf("missing paper method %s", want)
		}
	}
	if !names[BaselineName] {
		t.Fatal("baseline missing from paper methods")
	}
}

func TestScenariosTopNValidation(t *testing.T) {
	_, a := tinyRun(t, fastMethods()[:1], 2)
	rcfg := rec.DefaultConfig(a.Types.Item)
	r, err := rec.New(a.Graph, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	rn := NewRunner(a.Graph, r)
	if _, err := rn.Scenarios(a.Users, 1, 0); err == nil {
		t.Fatal("TopN=1 must be rejected")
	}
}
