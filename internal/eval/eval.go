// Package eval is the experiment harness that regenerates the paper's
// evaluation (§6): it enumerates (user, Why-Not item) scenarios exactly
// as §6.2 prescribes — for each sampled user, every item of the top-10
// recommendation list except the top-1 becomes one Why-Not question —
// runs the configured explanation methods on every scenario, and
// aggregates the paper's three metrics:
//
//   - success rate (Figures 4 and 5),
//   - runtime, split by found / not found (Table 5),
//   - explanation size (Figure 6).
//
// The renderers in report.go print each table and figure in a layout
// mirroring the paper's.
package eval

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/why-not-xai/emigre/internal/emigre"
	"github.com/why-not-xai/emigre/internal/hin"
	"github.com/why-not-xai/emigre/internal/obs"
	"github.com/why-not-xai/emigre/internal/rec"
)

// MethodSpec names one evaluated configuration (mode + strategy), with
// the label used in the paper's plots.
type MethodSpec struct {
	Name   string
	Mode   emigre.Mode
	Method emigre.Method
}

// PaperMethods returns the eight configurations of §6.2 in the paper's
// presentation order: Add-mode rows first, then Remove-mode rows, then
// the two baselines.
func PaperMethods() []MethodSpec {
	return []MethodSpec{
		{Name: "add_incremental", Mode: emigre.Add, Method: emigre.Incremental},
		{Name: "add_powerset", Mode: emigre.Add, Method: emigre.Powerset},
		{Name: "add_ex", Mode: emigre.Add, Method: emigre.Exhaustive},
		{Name: "remove_incremental", Mode: emigre.Remove, Method: emigre.Incremental},
		{Name: "remove_powerset", Mode: emigre.Remove, Method: emigre.Powerset},
		{Name: "remove_ex", Mode: emigre.Remove, Method: emigre.Exhaustive},
		{Name: "remove_ex_direct", Mode: emigre.Remove, Method: emigre.ExhaustiveDirect},
		{Name: "remove_brute", Mode: emigre.Remove, Method: emigre.BruteForce},
	}
}

// ExtensionMethods returns configurations for the future-work modes
// this library implements beyond the paper: the Combined add/remove
// mode (§6.4) and the Reweight mode (§7), each under the Exhaustive
// strategy.
func ExtensionMethods() []MethodSpec {
	return []MethodSpec{
		{Name: "combined_incremental", Mode: emigre.Combined, Method: emigre.Incremental},
		{Name: "combined_ex", Mode: emigre.Combined, Method: emigre.Exhaustive},
		{Name: "reweight_ex", Mode: emigre.Reweight, Method: emigre.Exhaustive},
	}
}

// BaselineName is the success-rate oracle of Figure 5.
const BaselineName = "remove_brute"

// Scenario is one Why-Not question drawn from a user's recommendation
// list.
type Scenario struct {
	User hin.NodeID
	WNI  hin.NodeID
	// Rec is the top-1 recommendation the question is asked against.
	Rec hin.NodeID
	// Rank is WNI's position in the user's list (2-based: position 1 is
	// the recommendation itself).
	Rank int
	// Actions is the user's out-degree at enumeration time — the
	// activity proxy used by Results.ActivityBreakdown.
	Actions int
}

// Outcome is the result of one (scenario, method) run.
type Outcome struct {
	Scenario Scenario
	Method   MethodSpec
	// Found reports that the method returned an explanation.
	Found bool
	// Correct reports that the (re-)verified explanation really makes
	// WNI the top-1 item. For CHECK-guarded methods Correct == Found;
	// for the direct baseline it can be false while Found is true.
	Correct bool
	// Size is the explanation size when found.
	Size int
	// Duration is the wall-clock time of the Explain call.
	Duration time.Duration
	// Err records unexpected failures (not "no explanation").
	Err string
}

// Config drives a harness run.
type Config struct {
	// Users to evaluate. Empty means every user node in the graph.
	Users []hin.NodeID
	// TopN bounds the recommendation list; positions 2..TopN become
	// Why-Not questions (paper: 10).
	TopN int
	// MaxScenariosPerUser caps questions per user (0 = all).
	MaxScenariosPerUser int
	// Methods to run. Empty means PaperMethods().
	Methods []MethodSpec
	// Explainer holds the shared emigre options (T_e, budgets, ...).
	Explainer emigre.Options
	// Overrides substitutes per-method options, keyed by MethodSpec
	// name. Typical use: a larger MaxTests budget for remove_brute,
	// whose role as the Figure-5 oracle warrants more search (the paper
	// simply lets it run for 900+ seconds).
	Overrides map[string]emigre.Options
	// Progress, when non-nil, is called after every (scenario, method)
	// pair with the number of completed and total pairs. Calls are
	// serialized even with multiple workers.
	Progress func(done, total int)
	// Workers is the harness's combined concurrency budget: the product
	// of scenario-level workers and per-query CHECK workers stays at or
	// under it. With the default CheckWorkers of 1 every unit of the
	// budget evaluates a distinct (scenario, method) pair in parallel —
	// the historical meaning of this field. 0 or 1 runs serially.
	// Outcome order — and each outcome's content — is deterministic
	// regardless of how the budget is split (ordered commit inside the
	// CHECK pipeline keeps per-query results byte-identical).
	Workers int
	// CheckWorkers is the per-query CHECK parallelism
	// (emigre.Options.Parallelism) carved out of the Workers budget:
	// scenario-level workers become max(1, Workers/CheckWorkers). It is
	// applied to the shared explainer options and every override, so the
	// combined budget holds even for per-method configurations. 0 or 1
	// keeps queries sequential inside — the right default under the
	// harness, which already saturates cores across scenarios; raise it
	// when evaluating few scenarios on many cores.
	CheckWorkers int
}

// Results aggregates the outcomes of a run.
type Results struct {
	Scenarios []Scenario
	Outcomes  []Outcome
}

// Runner executes evaluation runs over one graph + recommender.
type Runner struct {
	g *hin.Graph
	r *rec.Recommender
}

// NewRunner builds a harness over the given graph and recommender.
func NewRunner(g *hin.Graph, r *rec.Recommender) *Runner {
	return &Runner{g: g, r: r}
}

// Scenarios enumerates the Why-Not questions of §6.2 for the given
// users: every item in each user's top-N list except the first.
func (rn *Runner) Scenarios(users []hin.NodeID, topN, maxPerUser int) ([]Scenario, error) {
	if topN < 2 {
		return nil, fmt.Errorf("eval: TopN must be at least 2, got %d", topN)
	}
	var out []Scenario
	for _, u := range users {
		list, err := rn.r.TopN(u, topN)
		if err != nil {
			if errors.Is(err, rec.ErrNoCandidates) {
				continue
			}
			// Skip users the recommender cannot serve, record nothing.
			continue
		}
		if len(list) < 2 {
			continue
		}
		actions := rn.g.OutDegree(u)
		n := 0
		for rank := 1; rank < len(list); rank++ {
			out = append(out, Scenario{
				User: u, WNI: list[rank].Node, Rec: list[0].Node,
				Rank: rank + 1, Actions: actions,
			})
			n++
			if maxPerUser > 0 && n >= maxPerUser {
				break
			}
		}
	}
	return out, nil
}

// Run executes the configured methods over all scenarios.
func (rn *Runner) Run(cfg Config) (*Results, error) {
	users := cfg.Users
	if len(users) == 0 {
		for v := 0; v < rn.g.NumNodes(); v++ {
			// Any node that can receive recommendations counts as a user
			// — the caller normally passes the sampled users explicitly.
			users = append(users, hin.NodeID(v))
		}
	}
	topN := cfg.TopN
	if topN == 0 {
		topN = 10
	}
	methods := cfg.Methods
	if len(methods) == 0 {
		methods = PaperMethods()
	}
	scenarios, err := rn.Scenarios(users, topN, cfg.MaxScenariosPerUser)
	if err != nil {
		return nil, err
	}
	checkWorkers := cfg.CheckWorkers
	if checkWorkers < 1 {
		checkWorkers = 1
	}
	sharedOpts := cfg.Explainer
	sharedOpts.Parallelism = checkWorkers
	explainers := make(map[string]*emigre.Explainer, len(methods))
	shared := emigre.New(rn.g, rn.r, sharedOpts)
	for _, m := range methods {
		if o, ok := cfg.Overrides[m.Name]; ok {
			o.Parallelism = checkWorkers
			explainers[m.Name] = emigre.New(rn.g, rn.r, o)
		} else {
			explainers[m.Name] = shared
		}
	}
	res := &Results{Scenarios: scenarios}
	total := len(scenarios) * len(methods)
	res.Outcomes = make([]Outcome, total)

	type job struct {
		idx int
		sc  Scenario
		m   MethodSpec
	}
	jobs := make([]job, 0, total)
	for i, sc := range scenarios {
		for j, m := range methods {
			jobs = append(jobs, job{idx: i*len(methods) + j, sc: sc, m: m})
		}
	}

	// Split the combined budget: CheckWorkers go to each query's CHECK
	// pipeline, the rest drive scenario-level fan-out.
	workers := cfg.Workers / checkWorkers
	if workers < 1 {
		workers = 1
	}
	if workers > total {
		workers = total
	}
	if workers == 1 {
		for done, jb := range jobs {
			res.Outcomes[jb.idx] = runOne(explainers[jb.m.Name], jb.sc, jb.m)
			if cfg.Progress != nil {
				cfg.Progress(done+1, total)
			}
		}
		return res, nil
	}

	// Parallel path: the recommender's flat snapshot is already warm
	// (scenario enumeration scored every user), so shared explainers
	// only perform read access on shared structures.
	rn.r.Flat()
	var (
		next     atomic.Int64
		done     atomic.Int64
		progress sync.Mutex
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1)) - 1
				if k >= len(jobs) {
					return
				}
				jb := jobs[k]
				res.Outcomes[jb.idx] = runOne(explainers[jb.m.Name], jb.sc, jb.m)
				d := int(done.Add(1))
				if cfg.Progress != nil {
					progress.Lock()
					cfg.Progress(d, total)
					progress.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return res, nil
}

func runOne(ex *emigre.Explainer, sc Scenario, m MethodSpec) Outcome {
	out := Outcome{Scenario: sc, Method: m}
	start := time.Now()
	expl, err := ex.ExplainWith(emigre.Query{User: sc.User, WNI: sc.WNI}, m.Mode, m.Method)
	out.Duration = time.Since(start)
	switch {
	case err == nil:
		out.Found = true
		out.Size = expl.Size()
		if expl.Verified {
			out.Correct = true
		} else {
			// Direct baseline: audit the unverified explanation.
			ok, verr := ex.Verify(expl)
			if verr != nil {
				out.Err = verr.Error()
			}
			out.Correct = ok
		}
	case isNoExplanation(err):
		// Found=false, Correct=false: a clean miss.
	default:
		out.Err = err.Error()
	}
	recordOutcome(m, out)
	return out
}

// recordOutcome exports one evaluation result on the process-global
// registry, so a -metrics-out dump and live telemetry share the source
// of truth the paper tables are computed from.
func recordOutcome(m MethodSpec, out Outcome) {
	if !obs.Enabled() {
		return
	}
	result := "miss"
	switch {
	case out.Err != "":
		result = "error"
	case out.Found:
		result = "found"
	}
	obs.Default().Counter("emigre_eval_outcomes_total",
		"Evaluation outcomes by method and result.",
		obs.L("method", m.Name), obs.L("result", result)).Inc()
	obs.Default().Histogram("emigre_eval_explain_seconds",
		"Wall time of one evaluated explanation.", obs.DefBuckets(),
		obs.L("method", m.Name)).Observe(out.Duration.Seconds())
}

func isNoExplanation(err error) bool {
	return errors.Is(err, emigre.ErrNoExplanation)
}
