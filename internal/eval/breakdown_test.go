package eval

import (
	"bytes"
	"strings"
	"testing"

	"github.com/why-not-xai/emigre/internal/dataset"
	"github.com/why-not-xai/emigre/internal/emigre"
	"github.com/why-not-xai/emigre/internal/rec"
)

func TestRankBreakdown(t *testing.T) {
	res, _ := tinyRun(t, fastMethods(), 8)
	br := res.RankBreakdown("remove_incremental")
	if len(br) == 0 {
		t.Fatal("no rank buckets")
	}
	total := 0
	for rank, rc := range br {
		if rank < 2 {
			t.Fatalf("rank %d below 2", rank)
		}
		if rc.Correct > rc.Total {
			t.Fatalf("bucket rank %d: correct %d > total %d", rank, rc.Correct, rc.Total)
		}
		if r := rc.Rate(); r < 0 || r > 1 {
			t.Fatalf("rate %g out of range", r)
		}
		total += rc.Total
	}
	if total != len(res.Scenarios) {
		t.Fatalf("rank buckets cover %d outcomes, want %d", total, len(res.Scenarios))
	}
	if (RateCount{}).Rate() != 0 {
		t.Fatal("empty bucket rate should be 0")
	}
}

func TestActivityBreakdown(t *testing.T) {
	res, _ := tinyRun(t, fastMethods(), 8)
	br := res.ActivityBreakdown("remove_incremental", []int{10, 20})
	total := 0
	for label, rc := range br {
		if label != "<=10" && label != "<=20" && label != ">20" {
			t.Fatalf("unexpected bucket %q", label)
		}
		total += rc.Total
	}
	if total != len(res.Scenarios) {
		t.Fatalf("activity buckets cover %d outcomes, want %d", total, len(res.Scenarios))
	}
	// No bounds: single "all" bucket.
	all := res.ActivityBreakdown("remove_incremental", nil)
	if len(all) != 1 || all["all"].Total != len(res.Scenarios) {
		t.Fatalf("empty bounds should produce one bucket: %v", all)
	}
}

func TestScenarioActionsRecorded(t *testing.T) {
	res, a := tinyRun(t, fastMethods()[:1], 4)
	for _, sc := range res.Scenarios {
		if sc.Actions != a.Graph.OutDegree(sc.User) {
			t.Fatalf("scenario actions %d != user out-degree %d", sc.Actions, a.Graph.OutDegree(sc.User))
		}
	}
}

func TestRenderRankBreakdown(t *testing.T) {
	res, _ := tinyRun(t, fastMethods(), 6)
	var buf bytes.Buffer
	if err := RenderRankBreakdown(&buf, res); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "by Why-Not item rank") || !strings.Contains(out, "r2:") {
		t.Fatalf("rank breakdown output wrong:\n%s", out)
	}
}

func TestWriteMarkdown(t *testing.T) {
	res, _ := tinyRun(t, fastMethods(), 6)
	var buf bytes.Buffer
	if err := res.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"## Figure 4", "## Figure 5", "## Figure 6", "## Table 5",
		"| remove_incremental |", "|---|",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestRunSweep(t *testing.T) {
	cfg := dataset.SmallConfig()
	cfg.Users = 10
	cfg.Items = 100
	cfg.Categories = 4
	a, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := rec.DefaultConfig(a.Types.Item)
	base.PPR.Epsilon = 1e-6
	betaHalf := base
	betaHalf.Beta = 0.5
	betaOne := base
	betaOne.Beta = 1
	variants := []SweepVariant{
		{Label: "beta=0.5", Rec: betaHalf},
		{Label: "beta=1.0", Rec: betaOne},
	}
	sweep, err := RunSweep(a.Graph, variants, Config{
		Users:               a.Users[:4],
		TopN:                4,
		MaxScenariosPerUser: 1,
		Methods:             fastMethods()[:1],
		Explainer: emigre.Options{
			AllowedEdgeTypes: a.UserActionEdgeTypes(),
			AddEdgeType:      a.Types.Reviewed,
			MaxTests:         10,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != 2 {
		t.Fatalf("sweep points = %d, want 2", len(sweep))
	}
	for _, p := range sweep {
		if len(p.Results.Outcomes) == 0 {
			t.Fatalf("variant %q produced no outcomes", p.Label)
		}
	}
	var buf bytes.Buffer
	if err := RenderSweep(&buf, sweep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "beta=0.5") || !strings.Contains(buf.String(), "beta=1.0") {
		t.Fatalf("sweep rendering wrong:\n%s", buf.String())
	}
}

func TestRunSweepValidation(t *testing.T) {
	cfg := dataset.SmallConfig()
	cfg.Users = 5
	cfg.Items = 50
	cfg.Categories = 3
	a, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSweep(a.Graph, nil, Config{}); err == nil {
		t.Fatal("empty sweep should error")
	}
	bad := rec.Config{} // invalid: no item types
	if _, err := RunSweep(a.Graph, []SweepVariant{{Label: "bad", Rec: bad}}, Config{}); err == nil {
		t.Fatal("invalid variant should error")
	}
}
