package embed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	got := Tokenize("Great BOOK, loved it!  10/10")
	want := []string{"great", "book", "loved", "it", "10", "10"}
	if len(got) != len(want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %q, want %q", i, got[i], want[i])
		}
	}
	if len(Tokenize("  ...  ")) != 0 {
		t.Fatal("punctuation-only text should produce no tokens")
	}
}

func TestEncodeDeterministic(t *testing.T) {
	e := NewEncoder(0)
	if e.Dim() != DefaultDim {
		t.Fatalf("Dim = %d, want %d", e.Dim(), DefaultDim)
	}
	a := e.Encode("wonderful fantasy adventure")
	b := e.Encode("wonderful fantasy adventure")
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("encoding not deterministic")
		}
	}
}

func TestEncodeNormalized(t *testing.T) {
	e := NewEncoder(32)
	v := e.Encode("some review text with several words")
	var n float64
	for _, x := range v {
		n += x * x
	}
	if math.Abs(n-1) > 1e-12 {
		t.Fatalf("L2 norm^2 = %g, want 1", n)
	}
	zero := e.Encode("")
	for _, x := range zero {
		if x != 0 {
			t.Fatal("empty text should encode to the zero vector")
		}
	}
}

func TestCosineProperties(t *testing.T) {
	e := NewEncoder(128)
	a := e.Encode("dark fantasy dragons magic quest")
	b := e.Encode("dragons magic fantasy epic quest")
	c := e.Encode("compiler optimization register allocation pass")
	if got := Cosine(a, a); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Cosine(a,a) = %g, want 1", got)
	}
	simAB := Cosine(a, b)
	simAC := Cosine(a, c)
	if simAB <= simAC {
		t.Fatalf("overlapping texts should be more similar: sim(a,b)=%g, sim(a,c)=%g", simAB, simAC)
	}
	if Cosine(a, b) != Cosine(b, a) {
		t.Fatal("cosine should be symmetric")
	}
}

func TestCosineDegenerateInputs(t *testing.T) {
	if Cosine(nil, nil) != 0 {
		t.Fatal("Cosine(nil,nil) should be 0")
	}
	if Cosine([]float64{1, 0}, []float64{1}) != 0 {
		t.Fatal("length mismatch should be 0")
	}
	if Cosine([]float64{0, 0}, []float64{1, 0}) != 0 {
		t.Fatal("zero vector should yield 0")
	}
}

func TestQuickCosineBounds(t *testing.T) {
	e := NewEncoder(64)
	f := func(s1, s2 string) bool {
		c := Cosine(e.Encode(s1), e.Encode(s2))
		return c >= -1-1e-9 && c <= 1+1e-9 && !math.IsNaN(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
