// Package embed provides a deterministic text-embedding substrate that
// substitutes for Google's Universal Sentence Encoder used in the
// paper's preprocessing (§6.1) to create weighted review–review
// similarity edges.
//
// The encoder hashes each token into a fixed-dimension signed feature
// vector (the classic feature-hashing trick) and L2-normalizes the sum,
// so the cosine similarity of two encodings grows with token overlap —
// exactly the property PPR consumes: "similar review text ⇒ heavier
// edge ⇒ stronger path". The substitution is documented in DESIGN.md §4.
package embed

import (
	"hash/fnv"
	"math"
	"strings"
	"unicode"

	"github.com/why-not-xai/emigre/internal/fmath"
)

// DefaultDim is the embedding dimensionality used by the dataset
// generator. Larger dimensions reduce hash collisions; 64 keeps the
// synthetic pipeline fast.
const DefaultDim = 64

// Encoder embeds text into fixed-length vectors. The zero value is not
// usable; construct with NewEncoder.
type Encoder struct {
	dim int
}

// NewEncoder returns an encoder producing dim-dimensional vectors.
// Non-positive dim falls back to DefaultDim.
func NewEncoder(dim int) *Encoder {
	if dim <= 0 {
		dim = DefaultDim
	}
	return &Encoder{dim: dim}
}

// Dim returns the embedding dimensionality.
func (e *Encoder) Dim() int { return e.dim }

// Encode embeds text as an L2-normalized hashed bag-of-words vector.
// Empty or token-free text encodes to the zero vector.
func (e *Encoder) Encode(text string) []float64 {
	v := make([]float64, e.dim)
	for _, tok := range Tokenize(text) {
		h := fnv.New64a()
		_, _ = h.Write([]byte(tok))
		sum := h.Sum64()
		// splitmix-style diffusion: independent bucket and sign bits.
		z := sum
		z ^= z >> 33
		z *= 0xff51afd7ed558ccd
		z ^= z >> 33
		bucket := int(z % uint64(e.dim))
		sign := 1.0
		if (z>>63)&1 == 1 {
			sign = -1.0
		}
		v[bucket] += sign
	}
	normalize(v)
	return v
}

// Tokenize lower-cases the text and splits it on any non-letter,
// non-digit rune.
func Tokenize(text string) []string {
	return strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}

// Cosine returns the cosine similarity of two vectors, 0 when either is
// zero or the lengths differ.
func Cosine(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if fmath.Eq(na, 0) || fmath.Eq(nb, 0) {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

func normalize(v []float64) {
	var n float64
	for _, x := range v {
		n += x * x
	}
	if fmath.Eq(n, 0) {
		return
	}
	n = math.Sqrt(n)
	for i := range v {
		v[i] /= n
	}
}
