package embed

import "testing"

const benchText = "epic fantasy worldbuilding magic quest dragons great read loved it"

func BenchmarkEncode(b *testing.B) {
	e := NewEncoder(DefaultDim)
	for i := 0; i < b.N; i++ {
		if v := e.Encode(benchText); len(v) != DefaultDim {
			b.Fatal("bad encoding")
		}
	}
}

func BenchmarkCosine(b *testing.B) {
	e := NewEncoder(DefaultDim)
	x := e.Encode(benchText)
	y := e.Encode("mystery detective clues atmospheric noir well written story")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Cosine(x, y)
	}
}

func BenchmarkTokenize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(Tokenize(benchText)) == 0 {
			b.Fatal("no tokens")
		}
	}
}
