// Package dataset builds the graphs used by the paper's evaluation.
//
// The paper evaluates on the Amazon Customer Review dataset, whose S3
// release has been retired and is not redistributable. This package
// substitutes a synthetic generator with the same *shape* (DESIGN.md
// §4): 120 users, ~7.5k items, 32 heavy-tailed categories, ~2.3k
// reviews with generated text, ratings 1–5 skewed positive, and the
// paper's full preprocessing pipeline (§6.1):
//
//  1. keep only good ratings (> 3);
//  2. model users, items, categories and reviews as typed nodes with
//     "rated", "reviewed", "has-review" and "belongs-to" relationships,
//     every relationship bidirectional;
//  3. add review–review similarity edges weighted by the cosine
//     similarity of review-text embeddings (package embed substitutes
//     the Universal Sentence Encoder);
//  4. sample moderate users (10–100 actions) and extract their 4-hop
//     neighborhood → the "Amazon Lite" evaluation graph.
//
// The package also ships the Figure-1 books toy graph (books.go) used
// by the paper's running example.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/why-not-xai/emigre/internal/embed"
)

// Node and edge type names registered by this package.
const (
	TypeUser     = "user"
	TypeItem     = "item"
	TypeCategory = "category"
	TypeReview   = "review"

	EdgeRated     = "rated"
	EdgeReviewed  = "reviewed"
	EdgeHasReview = "has-review"
	EdgeBelongsTo = "belongs-to"
	EdgeSimilar   = "similar-to"
)

// Config parameterizes the synthetic Amazon generator.
type Config struct {
	Seed int64

	Users      int
	Items      int
	Categories int

	// CategoriesPerItemMean controls how many categories an item
	// belongs to (≥ 1).
	CategoriesPerItemMean float64

	// PreferredCategories is the number of categories a user's taste
	// concentrates on.
	PreferredCategories int

	// RatingsPerUserMean/Std shape the (clipped normal) number of items
	// each user rates. Paper user degree: 22.1 ± 2.7 actions.
	RatingsPerUserMean float64
	RatingsPerUserStd  float64

	// ReviewProb is the probability a rated item also gets a text
	// review (each review adds a "reviewed" action and a review node).
	ReviewProb float64

	// GoodRatingBias is the probability a rating is > 3 (the paper
	// keeps only such ratings).
	GoodRatingBias float64

	// SimilarityThreshold and MaxSimilarPerReview bound the
	// review–review similarity edges.
	SimilarityThreshold float64
	MaxSimilarPerReview int

	// EmbeddingDim is the review-embedding dimensionality.
	EmbeddingDim int
}

// DefaultConfig returns the full paper-scale configuration (≈11.8k
// nodes / ≈40.5k directed edges after preprocessing).
func DefaultConfig() Config {
	return Config{
		Seed:                  1,
		Users:                 120,
		Items:                 7459,
		Categories:            32,
		CategoriesPerItemMean: 1.57,
		PreferredCategories:   3,
		RatingsPerUserMean:    28,
		RatingsPerUserStd:     3,
		ReviewProb:            0.85,
		GoodRatingBias:        0.8,
		SimilarityThreshold:   0.5,
		MaxSimilarPerReview:   1,
		EmbeddingDim:          embed.DefaultDim,
	}
}

// SmallConfig returns a scaled-down configuration for tests and
// examples (a few hundred nodes).
func SmallConfig() Config {
	c := DefaultConfig()
	c.Users = 30
	c.Items = 400
	c.Categories = 8
	c.RatingsPerUserMean = 14
	c.RatingsPerUserStd = 2
	return c
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Users <= 0 || c.Items <= 0 || c.Categories <= 0:
		return fmt.Errorf("dataset: users/items/categories must be positive (%d/%d/%d)", c.Users, c.Items, c.Categories)
	case c.CategoriesPerItemMean < 1:
		return fmt.Errorf("dataset: CategoriesPerItemMean must be ≥ 1, got %g", c.CategoriesPerItemMean)
	case c.PreferredCategories <= 0 || c.PreferredCategories > c.Categories:
		return fmt.Errorf("dataset: PreferredCategories out of range: %d", c.PreferredCategories)
	case c.RatingsPerUserMean <= 0:
		return fmt.Errorf("dataset: RatingsPerUserMean must be positive, got %g", c.RatingsPerUserMean)
	case c.ReviewProb < 0 || c.ReviewProb > 1:
		return fmt.Errorf("dataset: ReviewProb out of [0,1]: %g", c.ReviewProb)
	case c.GoodRatingBias < 0 || c.GoodRatingBias > 1:
		return fmt.Errorf("dataset: GoodRatingBias out of [0,1]: %g", c.GoodRatingBias)
	case c.SimilarityThreshold < 0 || c.SimilarityThreshold >= 1:
		return fmt.Errorf("dataset: SimilarityThreshold out of [0,1): %g", c.SimilarityThreshold)
	}
	return nil
}

// Rating is one raw user-item interaction before preprocessing.
type Rating struct {
	User   int // user index (0-based)
	Item   int // item index (0-based)
	Stars  int // 1..5
	Review string
}

// Raw is the un-preprocessed synthetic dataset, mirroring what the
// Amazon release provides: items with category memberships, and rating
// records with optional review text.
type Raw struct {
	Config         Config
	ItemCategories [][]int // item index -> category indices
	Ratings        []Rating
}

// GenerateRaw produces the raw synthetic dataset. The generator is
// deterministic for a fixed Config.Seed.
func GenerateRaw(cfg Config) (*Raw, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Heavy-tailed category popularity (the paper's category degrees
	// have std ≈ 0.8 × mean): Zipf-ish weights.
	catWeight := make([]float64, cfg.Categories)
	var totalW float64
	for c := range catWeight {
		catWeight[c] = 1 / math.Sqrt(float64(c+1))
		totalW += catWeight[c]
	}
	sampleCat := func() int {
		x := rng.Float64() * totalW
		for c, w := range catWeight {
			x -= w
			if x <= 0 {
				return c
			}
		}
		return cfg.Categories - 1
	}

	// Item -> categories (each item in ≥ 1 category).
	itemCats := make([][]int, cfg.Items)
	for i := range itemCats {
		n := 1
		for rng.Float64() < cfg.CategoriesPerItemMean-1 && n < cfg.Categories {
			// Geometric extension approximating the configured mean.
			n++
			if rng.Float64() < 0.5 {
				break
			}
		}
		seen := make(map[int]bool, n)
		for len(seen) < n {
			seen[sampleCat()] = true
		}
		for c := range seen {
			itemCats[i] = append(itemCats[i], c)
		}
		sort.Ints(itemCats[i]) // map order is random; keep output deterministic
	}
	// Category -> items index for preference-driven rating.
	catItems := make([][]int, cfg.Categories)
	for i, cats := range itemCats {
		for _, c := range cats {
			catItems[c] = append(catItems[c], i)
		}
	}

	var ratings []Rating
	for u := 0; u < cfg.Users; u++ {
		// User taste: a few preferred categories, heavy ones more likely.
		prefs := make(map[int]bool)
		for len(prefs) < cfg.PreferredCategories {
			prefs[sampleCat()] = true
		}
		var prefList []int
		for c := range prefs {
			if len(catItems[c]) > 0 {
				prefList = append(prefList, c)
			}
		}
		if len(prefList) == 0 {
			prefList = append(prefList, 0)
		}
		sort.Ints(prefList) // deterministic iteration despite map collection
		n := int(rng.NormFloat64()*cfg.RatingsPerUserStd + cfg.RatingsPerUserMean)
		if n < 1 {
			n = 1
		}
		rated := make(map[int]bool)
		for k := 0; k < n; k++ {
			var item int
			if rng.Float64() < 0.85 {
				c := prefList[rng.Intn(len(prefList))]
				item = catItems[c][rng.Intn(len(catItems[c]))]
			} else {
				item = rng.Intn(cfg.Items)
			}
			if rated[item] {
				continue
			}
			rated[item] = true
			stars := sampleStars(rng, cfg.GoodRatingBias)
			review := ""
			if rng.Float64() < cfg.ReviewProb {
				review = reviewText(rng, itemCats[item])
			}
			ratings = append(ratings, Rating{User: u, Item: item, Stars: stars, Review: review})
		}
	}
	return &Raw{Config: cfg, ItemCategories: itemCats, Ratings: ratings}, nil
}

// sampleStars draws a 1-5 rating; with probability goodBias the rating
// is 4 or 5, otherwise 1-3.
func sampleStars(rng *rand.Rand, goodBias float64) int {
	if rng.Float64() < goodBias {
		return 4 + rng.Intn(2)
	}
	return 1 + rng.Intn(3)
}

// categoryVocab is the token pool reviews draw from; reviews of items
// in the same category share vocabulary, so their hashed embeddings are
// similar — the property the review–review edges encode.
var categoryVocab = [][]string{
	{"thrilling", "plot", "characters", "twist", "suspense", "pacing"},
	{"practical", "guide", "examples", "reference", "clear", "concise"},
	{"romance", "heartfelt", "emotional", "tender", "moving", "sweet"},
	{"epic", "fantasy", "worldbuilding", "magic", "quest", "dragons"},
	{"history", "detailed", "sources", "period", "accurate", "archival"},
	{"science", "rigorous", "insightful", "theory", "evidence", "experiments"},
	{"cooking", "recipes", "flavors", "ingredients", "easy", "delicious"},
	{"mystery", "detective", "clues", "whodunit", "atmospheric", "noir"},
}

var commonVocab = []string{
	"great", "book", "read", "loved", "recommend", "good", "really",
	"story", "well", "written", "excellent", "enjoyed",
}

func reviewText(rng *rand.Rand, cats []int) string {
	pool := categoryVocab[0]
	if len(cats) > 0 {
		pool = categoryVocab[cats[0]%len(categoryVocab)]
	}
	n := 5 + rng.Intn(8)
	words := make([]string, 0, n)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.6 {
			words = append(words, pool[rng.Intn(len(pool))])
		} else {
			words = append(words, commonVocab[rng.Intn(len(commonVocab))])
		}
	}
	out := words[0]
	for _, w := range words[1:] {
		out += " " + w
	}
	return out
}
