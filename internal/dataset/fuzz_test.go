package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadRawCSV checks the CSV importer never panics on hostile input
// and that any dataset it accepts round-trips through the CSV writers.
func FuzzReadRawCSV(f *testing.F) {
	f.Add("item_id,categories\n0,0\n1,0;1\n",
		"user_id,item_id,star_rating,review_body\n0,0,5,great\n1,1,4,\n")
	f.Add("item_id,categories\n0,2\n",
		"user_id,item_id,star_rating,review_body\n0,0,4,\"quoted, text\"\n")
	f.Add("item_id,categories\n", "user_id,item_id,star_rating,review_body\n")
	f.Add("", "")
	f.Add("item_id,categories\n0,\n", "user_id,item_id,star_rating,review_body\n0,0,9,x\n")
	f.Fuzz(func(t *testing.T, items, ratings string) {
		cfg := SmallConfig()
		raw, err := ReadRawCSV(cfg, strings.NewReader(items), strings.NewReader(ratings))
		if err != nil {
			return
		}
		var itemsOut, ratingsOut bytes.Buffer
		if err := raw.WriteItemsCSV(&itemsOut); err != nil {
			t.Fatalf("WriteItemsCSV on accepted dataset: %v", err)
		}
		if err := raw.WriteRatingsCSV(&ratingsOut); err != nil {
			t.Fatalf("WriteRatingsCSV on accepted dataset: %v", err)
		}
		raw2, err := ReadRawCSV(cfg, bytes.NewReader(itemsOut.Bytes()), bytes.NewReader(ratingsOut.Bytes()))
		if err != nil {
			t.Fatalf("re-reading own CSV output: %v\nitems:\n%s\nratings:\n%s", err, itemsOut.Bytes(), ratingsOut.Bytes())
		}
		if len(raw2.Ratings) != len(raw.Ratings) || len(raw2.ItemCategories) != len(raw.ItemCategories) {
			t.Errorf("round trip changed sizes: %d/%d ratings, %d/%d items",
				len(raw.Ratings), len(raw2.Ratings), len(raw.ItemCategories), len(raw2.ItemCategories))
		}
		for i := range raw.Ratings {
			if raw.Ratings[i] != raw2.Ratings[i] {
				t.Errorf("rating %d changed in round trip: %+v vs %+v", i, raw.Ratings[i], raw2.Ratings[i])
			}
		}
	})
}
