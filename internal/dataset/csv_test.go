package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func TestRatingsCSVRoundTrip(t *testing.T) {
	cfg := SmallConfig()
	raw, err := GenerateRaw(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var items, ratings bytes.Buffer
	if err := raw.WriteItemsCSV(&items); err != nil {
		t.Fatal(err)
	}
	if err := raw.WriteRatingsCSV(&ratings); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRawCSV(cfg, &items, &ratings)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Ratings) != len(raw.Ratings) {
		t.Fatalf("rating count %d != %d", len(back.Ratings), len(raw.Ratings))
	}
	for i := range raw.Ratings {
		if raw.Ratings[i] != back.Ratings[i] {
			t.Fatalf("rating %d differs: %+v vs %+v", i, raw.Ratings[i], back.Ratings[i])
		}
	}
	if len(back.ItemCategories) != len(raw.ItemCategories) {
		t.Fatal("item counts differ")
	}
	for i := range raw.ItemCategories {
		if len(raw.ItemCategories[i]) != len(back.ItemCategories[i]) {
			t.Fatalf("item %d categories differ", i)
		}
		for k := range raw.ItemCategories[i] {
			if raw.ItemCategories[i][k] != back.ItemCategories[i][k] {
				t.Fatalf("item %d category %d differs", i, k)
			}
		}
	}
	// The round-tripped raw must build an equivalent graph.
	g1, err := BuildGraph(raw)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := BuildGraph(back)
	if err != nil {
		t.Fatal(err)
	}
	if g1.Graph.NumNodes() != g2.Graph.NumNodes() || g1.Graph.NumEdges() != g2.Graph.NumEdges() {
		t.Fatalf("graphs differ after CSV round trip: %d/%d vs %d/%d",
			g1.Graph.NumNodes(), g1.Graph.NumEdges(), g2.Graph.NumNodes(), g2.Graph.NumEdges())
	}
}

func TestReadRawCSVErrors(t *testing.T) {
	cfg := SmallConfig()
	goodItems := "item_id,categories\n0,0;1\n1,1\n"
	goodRatings := "user_id,item_id,star_rating,review_body\n0,0,5,great\n0,1,2,meh\n"
	cases := []struct {
		name           string
		items, ratings string
	}{
		{"missing items header", "x,y\n0,0\n", goodRatings},
		{"bad item id", "item_id,categories\nxx,0\n", goodRatings},
		{"sparse item ids", "item_id,categories\n5,0\n", goodRatings},
		{"duplicate item id", "item_id,categories\n0,0\n0,1\n", goodRatings},
		{"item without category", "item_id,categories\n0,\n", goodRatings},
		{"negative category", "item_id,categories\n0,-2\n", goodRatings},
		{"missing ratings header", goodItems, "a,b,c,d\n0,0,5,x\n"},
		{"bad stars", goodItems, "user_id,item_id,star_rating,review_body\n0,0,9,x\n"},
		{"unknown item", goodItems, "user_id,item_id,star_rating,review_body\n0,7,5,x\n"},
		{"malformed row", goodItems, "user_id,item_id,star_rating,review_body\n0,zz,5,x\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadRawCSV(cfg, strings.NewReader(tc.items), strings.NewReader(tc.ratings))
			if err == nil {
				t.Fatal("expected error")
			}
		})
	}
	// The happy path of the handwritten fixtures parses.
	raw, err := ReadRawCSV(cfg, strings.NewReader(goodItems), strings.NewReader(goodRatings))
	if err != nil {
		t.Fatal(err)
	}
	if raw.Config.Users != 1 || raw.Config.Items != 2 || raw.Config.Categories != 2 {
		t.Fatalf("inferred sizes wrong: %+v", raw.Config)
	}
}
