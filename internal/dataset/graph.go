package dataset

import (
	"fmt"
	"sort"

	"github.com/why-not-xai/emigre/internal/embed"
	"github.com/why-not-xai/emigre/internal/fmath"
	"github.com/why-not-xai/emigre/internal/hin"
)

// Types bundles the registered node- and edge-type IDs of a dataset
// graph, so downstream code never hard-codes registry lookups.
type Types struct {
	User     hin.NodeTypeID
	Item     hin.NodeTypeID
	Category hin.NodeTypeID
	Review   hin.NodeTypeID

	Rated     hin.EdgeTypeID
	Reviewed  hin.EdgeTypeID
	HasReview hin.EdgeTypeID
	BelongsTo hin.EdgeTypeID
	Similar   hin.EdgeTypeID
}

// RegisterTypes registers (or resolves) the standard dataset types on a
// registry.
func RegisterTypes(reg *hin.TypeRegistry) Types {
	return Types{
		User:      reg.NodeType(TypeUser),
		Item:      reg.NodeType(TypeItem),
		Category:  reg.NodeType(TypeCategory),
		Review:    reg.NodeType(TypeReview),
		Rated:     reg.EdgeType(EdgeRated),
		Reviewed:  reg.EdgeType(EdgeReviewed),
		HasReview: reg.EdgeType(EdgeHasReview),
		BelongsTo: reg.EdgeType(EdgeBelongsTo),
		Similar:   reg.EdgeType(EdgeSimilar),
	}
}

// Amazon is a preprocessed dataset graph with its node inventory.
type Amazon struct {
	Graph *hin.Graph
	Types Types

	Users      []hin.NodeID
	Items      []hin.NodeID
	Categories []hin.NodeID
	Reviews    []hin.NodeID
}

// UserActionEdgeTypes returns the paper's T_e for explanations: the
// user-item action types ("rated" and "reviewed").
func (a *Amazon) UserActionEdgeTypes() hin.EdgeTypeSet {
	return hin.NewEdgeTypeSet(a.Types.Rated, a.Types.Reviewed)
}

// Generate runs the full pipeline: raw synthesis followed by the
// paper's preprocessing (BuildGraph).
func Generate(cfg Config) (*Amazon, error) {
	raw, err := GenerateRaw(cfg)
	if err != nil {
		return nil, err
	}
	return BuildGraph(raw)
}

// BuildGraph applies the paper's §6.1 preprocessing to a raw dataset:
//
//   - ratings ≤ 3 are dropped;
//   - kept interactions become bidirectional "rated" edges weighted by
//     stars/5, plus a "reviewed" edge and a review node with
//     bidirectional "has-review" edges when the rating carries text;
//   - items link to their categories with bidirectional "belongs-to"
//     edges;
//   - review pairs on items sharing a category are linked with
//     bidirectional "similar-to" edges weighted by the cosine
//     similarity of their text embeddings, when it exceeds the
//     configured threshold;
//   - items and categories never touched by any kept edge are still
//     materialized as nodes (matching the paper's node counts), but
//     isolated review nodes are impossible by construction.
func BuildGraph(raw *Raw) (*Amazon, error) {
	cfg := raw.Config
	g := hin.NewGraph()
	types := RegisterTypes(g.Types())
	a := &Amazon{Graph: g, Types: types}

	for u := 0; u < cfg.Users; u++ {
		a.Users = append(a.Users, g.AddNode(types.User, fmt.Sprintf("user-%d", u)))
	}
	for i := 0; i < cfg.Items; i++ {
		a.Items = append(a.Items, g.AddNode(types.Item, fmt.Sprintf("item-%d", i)))
	}
	for c := 0; c < cfg.Categories; c++ {
		a.Categories = append(a.Categories, g.AddNode(types.Category, fmt.Sprintf("category-%d", c)))
	}
	for i, cats := range raw.ItemCategories {
		for _, c := range cats {
			if c < 0 || c >= cfg.Categories {
				return nil, fmt.Errorf("dataset: item %d references category %d out of range", i, c)
			}
			if err := g.AddBidirectional(a.Items[i], a.Categories[c], types.BelongsTo, 1); err != nil {
				return nil, err
			}
		}
	}

	enc := embed.NewEncoder(cfg.EmbeddingDim)
	var reviews []reviewRec
	for _, r := range raw.Ratings {
		if r.Stars <= 3 {
			continue // the paper keeps only appreciated items
		}
		if r.User < 0 || r.User >= cfg.Users || r.Item < 0 || r.Item >= cfg.Items {
			return nil, fmt.Errorf("dataset: rating references user %d / item %d out of range", r.User, r.Item)
		}
		u, it := a.Users[r.User], a.Items[r.Item]
		w := float64(r.Stars) / 5
		// An interaction with review text becomes a "reviewed" edge and
		// a review node; one without becomes a "rated" edge. This keeps
		// one user-item action edge per interaction, matching the edge
		// arithmetic of the paper's Table 4 (≈2.6k user-item edges for
		// ≈2.3k reviews across 120 users).
		if r.Review == "" {
			if _, exists := g.EdgeWeight(u, it, types.Rated); !exists {
				if err := g.AddBidirectional(u, it, types.Rated, w); err != nil {
					return nil, err
				}
			}
			continue
		}
		if _, exists := g.EdgeWeight(u, it, types.Reviewed); exists {
			continue // one review per (user, item)
		}
		if err := g.AddBidirectional(u, it, types.Reviewed, w); err != nil {
			return nil, err
		}
		rv := g.AddNode(types.Review, fmt.Sprintf("review-%d", len(reviews)))
		a.Reviews = append(a.Reviews, rv)
		if err := g.AddBidirectional(it, rv, types.HasReview, 1); err != nil {
			return nil, err
		}
		reviews = append(reviews, reviewRec{node: rv, item: r.Item, vec: enc.Encode(r.Review)})
	}

	if err := linkSimilarReviews(g, types, raw, reviews, cfg); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("dataset: generated graph invalid: %w", err)
	}
	return a, nil
}

// reviewRec tracks a materialized review node with its source item and
// text embedding.
type reviewRec struct {
	node hin.NodeID
	item int
	vec  []float64
}

// linkSimilarReviews adds the review–review similarity edges. Only
// review pairs whose items share a category are compared (the
// embedding substitute gives cross-category pairs near-zero similarity
// anyway), and each review links to at most MaxSimilarPerReview
// strongest peers.
func linkSimilarReviews(g *hin.Graph, types Types, raw *Raw, reviews []reviewRec, cfg Config) error {
	if cfg.MaxSimilarPerReview <= 0 {
		return nil
	}
	byCat := make(map[int][]int) // category -> review indices
	for idx, r := range reviews {
		for _, c := range raw.ItemCategories[r.item] {
			byCat[c] = append(byCat[c], idx)
		}
	}
	type pair struct {
		a, b int
		sim  float64
	}
	best := make(map[int][]pair) // review -> strongest candidate pairs
	seen := make(map[[2]int]bool)
	for _, idxs := range byCat {
		for i := 0; i < len(idxs); i++ {
			for j := i + 1; j < len(idxs); j++ {
				x, y := idxs[i], idxs[j]
				if x > y {
					x, y = y, x
				}
				key := [2]int{x, y}
				if seen[key] {
					continue
				}
				seen[key] = true
				sim := embed.Cosine(reviews[x].vec, reviews[y].vec)
				if sim <= cfg.SimilarityThreshold {
					continue
				}
				best[x] = append(best[x], pair{a: x, b: y, sim: sim})
				best[y] = append(best[y], pair{a: x, b: y, sim: sim})
			}
		}
	}
	// Greedily add the strongest pairs while respecting a hard per-review
	// degree cap on both endpoints.
	added := make(map[[2]int]bool)
	deg := make(map[int]int)
	var order []int
	for idx := range best {
		order = append(order, idx)
	}
	sort.Ints(order)
	for _, idx := range order {
		ps := best[idx]
		sort.Slice(ps, func(i, j int) bool {
			if !fmath.Eq(ps[i].sim, ps[j].sim) {
				return ps[i].sim > ps[j].sim
			}
			if ps[i].a != ps[j].a {
				return ps[i].a < ps[j].a
			}
			return ps[i].b < ps[j].b
		})
		for _, p := range ps {
			if deg[idx] >= cfg.MaxSimilarPerReview {
				break
			}
			key := [2]int{p.a, p.b}
			if added[key] {
				continue
			}
			if deg[p.a] >= cfg.MaxSimilarPerReview || deg[p.b] >= cfg.MaxSimilarPerReview {
				continue
			}
			added[key] = true
			deg[p.a]++
			deg[p.b]++
			if err := g.AddBidirectional(reviews[p.a].node, reviews[p.b].node, types.Similar, p.sim); err != nil {
				return err
			}
		}
	}
	return nil
}
