package dataset

import (
	"github.com/why-not-xai/emigre/internal/hin"
)

// Books is the paper's Figure-1 running example: a small book
// recommendation graph in which Paul, who read Candide and C and
// follows two other readers, is recommended Python and asks "Why not
// Harry Potter?".
//
// The node IDs differ from the paper's figure (which never fully
// specifies its graph); the structure is tuned so that the published
// story holds exactly:
//
//   - Paul's top-1 recommendation is Python (the programming cluster he
//     reaches through C is the strongest);
//   - Remove mode explains the missing Harry Potter with Paul's past
//     actions {Candide, C} (Figure 1a);
//   - Add mode explains it with the suggested action {The Lord of the
//     Rings} (Figure 1b);
//   - a PRINCE-style Why explanation of the current recommendation
//     instead removes {C} and lands on The Alchemist (Figure 2) — a
//     different answer to a different question.
type Books struct {
	Graph *hin.Graph
	Types Types

	// Users.
	Paul, Alice, Dan, Greg, Hank, Clara, Fiona hin.NodeID
	// Fantasy shelf.
	HarryPotter, LordOfTheRings, TheHobbit hin.NodeID
	// Classics shelf.
	Candide, TheAlchemist, Zadig hin.NodeID
	// Programming shelf.
	C, Python, Java hin.NodeID
	// Categories.
	Fantasy, Classics, Programming hin.NodeID

	// Follows is the user-user edge type (the figure's green edges).
	Follows hin.EdgeTypeID
}

// followWeight keeps Paul's social edges weaker than his reading
// actions, as in the figure where recommendations are driven primarily
// by books: it is tuned so that Harry Potter (reached through Alice)
// trails both Python and The Alchemist initially, yet dominates once
// Paul's two reading actions are counterfactually removed.
const followWeight = 0.2

// NewBooks builds the running-example graph.
func NewBooks() (*Books, error) {
	g := hin.NewGraph()
	types := RegisterTypes(g.Types())
	b := &Books{Graph: g, Types: types, Follows: g.Types().EdgeType("follows")}

	b.Paul = g.AddNode(types.User, "Paul")
	b.Alice = g.AddNode(types.User, "Alice")
	b.Dan = g.AddNode(types.User, "Dan")
	b.Greg = g.AddNode(types.User, "Greg")
	b.Hank = g.AddNode(types.User, "Hank")
	b.Clara = g.AddNode(types.User, "Clara")
	b.Fiona = g.AddNode(types.User, "Fiona")

	b.HarryPotter = g.AddNode(types.Item, "Harry Potter")
	b.LordOfTheRings = g.AddNode(types.Item, "The Lord of the Rings")
	b.TheHobbit = g.AddNode(types.Item, "The Hobbit")
	b.Candide = g.AddNode(types.Item, "Candide")
	b.TheAlchemist = g.AddNode(types.Item, "The Alchemist")
	b.Zadig = g.AddNode(types.Item, "Zadig")
	b.C = g.AddNode(types.Item, "C")
	b.Python = g.AddNode(types.Item, "Python")
	b.Java = g.AddNode(types.Item, "Java")

	b.Fantasy = g.AddNode(types.Category, "Fantasy")
	b.Classics = g.AddNode(types.Category, "Classics")
	b.Programming = g.AddNode(types.Category, "Programming")

	type link struct {
		a, b hin.NodeID
		typ  hin.EdgeTypeID
		w    float64
	}
	links := []link{
		// Shelves.
		{b.HarryPotter, b.Fantasy, types.BelongsTo, 1},
		{b.LordOfTheRings, b.Fantasy, types.BelongsTo, 1},
		{b.TheHobbit, b.Fantasy, types.BelongsTo, 1},
		{b.Candide, b.Classics, types.BelongsTo, 1},
		{b.TheAlchemist, b.Classics, types.BelongsTo, 1},
		{b.Zadig, b.Classics, types.BelongsTo, 1},
		{b.C, b.Programming, types.BelongsTo, 1},
		{b.Python, b.Programming, types.BelongsTo, 1},
		{b.Java, b.Programming, types.BelongsTo, 1},

		// Paul: two past reading actions and two social links.
		{b.Paul, b.Candide, types.Rated, 1},
		{b.Paul, b.C, types.Rated, 1},
		{b.Paul, b.Alice, b.Follows, followWeight},
		{b.Paul, b.Dan, b.Follows, followWeight},

		// Alice: the Harry Potter fan Paul follows.
		{b.Alice, b.HarryPotter, types.Rated, 1},

		// Dan: eclectic, low influence.
		{b.Dan, b.TheHobbit, types.Rated, 1},
		{b.Dan, b.Java, types.Rated, 1},

		// Greg and Hank: the programming cluster that powers Python.
		{b.Greg, b.C, types.Rated, 1},
		{b.Greg, b.Python, types.Rated, 1},
		{b.Hank, b.C, types.Rated, 1},
		{b.Hank, b.Python, types.Rated, 1},

		// Clara: the classics cluster that powers The Alchemist (the
		// lower Zadig weight keeps The Alchemist strictly ahead of it).
		{b.Clara, b.Candide, types.Rated, 1},
		{b.Clara, b.TheAlchemist, types.Rated, 1},
		{b.Clara, b.Zadig, types.Rated, 0.6},

		// Fiona: the fantasy cluster behind The Lord of the Rings.
		{b.Fiona, b.LordOfTheRings, types.Rated, 1},
		{b.Fiona, b.HarryPotter, types.Rated, 1},
		{b.Fiona, b.TheHobbit, types.Rated, 1},
	}
	for _, l := range links {
		if err := g.AddBidirectional(l.a, l.b, l.typ, l.w); err != nil {
			return nil, err
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return b, nil
}

// ActionEdgeTypes returns the explanation search space T_e of the
// running example: Paul's reading actions ("rated").
func (b *Books) ActionEdgeTypes() hin.EdgeTypeSet {
	return hin.NewEdgeTypeSet(b.Types.Rated)
}
