package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteRatingsCSV exports the raw ratings in the column layout of the
// original Amazon release subset this generator substitutes for:
// user_id, item_id, star_rating, review_body. The file round-trips
// through ReadRatingsCSV, so pipelines can be exercised end-to-end
// against files on disk.
func (raw *Raw) WriteRatingsCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"user_id", "item_id", "star_rating", "review_body"}); err != nil {
		return err
	}
	for _, r := range raw.Ratings {
		rec := []string{
			strconv.Itoa(r.User),
			strconv.Itoa(r.Item),
			strconv.Itoa(r.Stars),
			r.Review,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteItemsCSV exports the item-category memberships: item_id,
// categories (a ";"-separated list of category indices).
func (raw *Raw) WriteItemsCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"item_id", "categories"}); err != nil {
		return err
	}
	for i, cats := range raw.ItemCategories {
		parts := make([]string, len(cats))
		for k, c := range cats {
			parts[k] = strconv.Itoa(c)
		}
		if err := cw.Write([]string{strconv.Itoa(i), strings.Join(parts, ";")}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadRawCSV rebuilds a Raw dataset from the two CSV files written by
// WriteItemsCSV and WriteRatingsCSV. The provided Config supplies the
// preprocessing knobs (thresholds, embedding dimension); its size
// fields are overwritten by what the files actually contain.
func ReadRawCSV(cfg Config, items, ratings io.Reader) (*Raw, error) {
	ir := csv.NewReader(items)
	ir.FieldsPerRecord = 2
	itemRows, err := ir.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading items CSV: %w", err)
	}
	if len(itemRows) == 0 || itemRows[0][0] != "item_id" {
		return nil, fmt.Errorf("dataset: items CSV missing header")
	}
	itemRows = itemRows[1:]
	itemCats := make([][]int, len(itemRows))
	maxCat := -1
	for _, row := range itemRows {
		id, err := strconv.Atoi(row[0])
		if err != nil || id < 0 || id >= len(itemRows) {
			return nil, fmt.Errorf("dataset: bad item id %q (ids must be dense)", row[0])
		}
		if itemCats[id] != nil {
			return nil, fmt.Errorf("dataset: duplicate item id %d", id)
		}
		var cats []int
		for _, part := range strings.Split(row[1], ";") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			c, err := strconv.Atoi(part)
			if err != nil || c < 0 {
				return nil, fmt.Errorf("dataset: item %d has bad category %q", id, part)
			}
			if c > maxCat {
				maxCat = c
			}
			cats = append(cats, c)
		}
		if len(cats) == 0 {
			return nil, fmt.Errorf("dataset: item %d has no category", id)
		}
		sort.Ints(cats)
		itemCats[id] = cats
	}

	rr := csv.NewReader(ratings)
	rr.FieldsPerRecord = 4
	ratingRows, err := rr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading ratings CSV: %w", err)
	}
	if len(ratingRows) == 0 || ratingRows[0][0] != "user_id" {
		return nil, fmt.Errorf("dataset: ratings CSV missing header")
	}
	ratingRows = ratingRows[1:]
	var recs []Rating
	maxUser := -1
	for i, row := range ratingRows {
		u, err1 := strconv.Atoi(row[0])
		it, err2 := strconv.Atoi(row[1])
		stars, err3 := strconv.Atoi(row[2])
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("dataset: ratings CSV row %d malformed", i+2)
		}
		if u < 0 || it < 0 || it >= len(itemCats) {
			return nil, fmt.Errorf("dataset: ratings CSV row %d references unknown user/item", i+2)
		}
		if stars < 1 || stars > 5 {
			return nil, fmt.Errorf("dataset: ratings CSV row %d has stars %d outside 1-5", i+2, stars)
		}
		if u > maxUser {
			maxUser = u
		}
		recs = append(recs, Rating{User: u, Item: it, Stars: stars, Review: row[3]})
	}
	cfg.Users = maxUser + 1
	cfg.Items = len(itemCats)
	cfg.Categories = maxCat + 1
	if cfg.Users == 0 || cfg.Categories == 0 {
		return nil, fmt.Errorf("dataset: CSV files contain no usable data")
	}
	if cfg.PreferredCategories > cfg.Categories {
		// The taste knob only matters for generation; clamp it so small
		// files pass validation.
		cfg.PreferredCategories = cfg.Categories
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Raw{Config: cfg, ItemCategories: itemCats, Ratings: recs}, nil
}
