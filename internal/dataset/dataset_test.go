package dataset

import (
	"testing"

	"github.com/why-not-xai/emigre/internal/hin"
)

func TestConfigValidation(t *testing.T) {
	good := SmallConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("small config invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Users = 0 },
		func(c *Config) { c.Items = -1 },
		func(c *Config) { c.Categories = 0 },
		func(c *Config) { c.CategoriesPerItemMean = 0.5 },
		func(c *Config) { c.PreferredCategories = 0 },
		func(c *Config) { c.PreferredCategories = c.Categories + 1 },
		func(c *Config) { c.RatingsPerUserMean = 0 },
		func(c *Config) { c.ReviewProb = 1.5 },
		func(c *Config) { c.GoodRatingBias = -0.1 },
		func(c *Config) { c.SimilarityThreshold = 1 },
	}
	for i, mut := range mutations {
		c := SmallConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("mutation #%d should be invalid: %+v", i, c)
		}
	}
}

func TestGenerateRawDeterministic(t *testing.T) {
	cfg := SmallConfig()
	a, err := GenerateRaw(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateRaw(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Ratings) != len(b.Ratings) {
		t.Fatalf("rating counts differ: %d vs %d", len(a.Ratings), len(b.Ratings))
	}
	for i := range a.Ratings {
		if a.Ratings[i] != b.Ratings[i] {
			t.Fatalf("rating %d differs", i)
		}
	}
	cfg2 := cfg
	cfg2.Seed = 99
	c, err := GenerateRaw(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	same := len(a.Ratings) == len(c.Ratings)
	if same {
		for i := range a.Ratings {
			if a.Ratings[i] != c.Ratings[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical datasets")
	}
}

func TestRawShape(t *testing.T) {
	cfg := SmallConfig()
	raw, err := GenerateRaw(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw.ItemCategories) != cfg.Items {
		t.Fatalf("item categories rows = %d, want %d", len(raw.ItemCategories), cfg.Items)
	}
	for i, cats := range raw.ItemCategories {
		if len(cats) == 0 {
			t.Fatalf("item %d has no category", i)
		}
		for _, c := range cats {
			if c < 0 || c >= cfg.Categories {
				t.Fatalf("item %d category %d out of range", i, c)
			}
		}
	}
	goodWithText, good := 0, 0
	for _, r := range raw.Ratings {
		if r.Stars < 1 || r.Stars > 5 {
			t.Fatalf("rating stars %d out of range", r.Stars)
		}
		if r.User < 0 || r.User >= cfg.Users || r.Item < 0 || r.Item >= cfg.Items {
			t.Fatalf("rating endpoints out of range: %+v", r)
		}
		if r.Stars > 3 {
			good++
			if r.Review != "" {
				goodWithText++
			}
		}
	}
	if good == 0 || goodWithText == 0 {
		t.Fatal("expected some good ratings with reviews")
	}
	// Review probability is honored loosely.
	frac := float64(goodWithText) / float64(good)
	if frac < cfg.ReviewProb-0.15 || frac > cfg.ReviewProb+0.15 {
		t.Fatalf("review fraction %g far from configured %g", frac, cfg.ReviewProb)
	}
}

func TestBuildGraphPreprocessing(t *testing.T) {
	cfg := SmallConfig()
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := a.Graph
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(a.Users) != cfg.Users || len(a.Items) != cfg.Items || len(a.Categories) != cfg.Categories {
		t.Fatalf("node inventory mismatch: %d users, %d items, %d categories",
			len(a.Users), len(a.Items), len(a.Categories))
	}
	if len(a.Reviews) == 0 {
		t.Fatal("no review nodes generated")
	}
	counts := hin.EdgeTypeCounts(g)
	// Bidirectionality: every count must be even, and each relation adds
	// exactly two directed edges.
	for name, c := range counts {
		if c%2 != 0 {
			t.Fatalf("edge type %s has odd directed count %d (not bidirectional)", name, c)
		}
	}
	if counts[EdgeReviewed] != 2*len(a.Reviews) {
		t.Fatalf("reviewed edges %d != 2×reviews %d", counts[EdgeReviewed], 2*len(a.Reviews))
	}
	if counts[EdgeHasReview] != 2*len(a.Reviews) {
		t.Fatalf("has-review edges %d != 2×reviews %d", counts[EdgeHasReview], 2*len(a.Reviews))
	}
	// Every review node connects to exactly one item plus optional
	// similar links.
	simType := a.Types.Similar
	hasType := a.Types.HasReview
	for _, rv := range a.Reviews {
		items, sims := 0, 0
		g.OutEdges(rv, func(h hin.HalfEdge) bool {
			switch h.Type {
			case hasType:
				items++
			case simType:
				sims++
			default:
				t.Fatalf("review %d has unexpected edge type %d", rv, h.Type)
			}
			return true
		})
		if items != 1 {
			t.Fatalf("review %d connects to %d items, want 1", rv, items)
		}
		if sims > cfg.MaxSimilarPerReview {
			t.Fatalf("review %d has %d similar links, budget %d", rv, sims, cfg.MaxSimilarPerReview)
		}
	}
	// Only good ratings survive: weights of action edges are > 3/5.
	for _, u := range a.Users {
		for _, e := range g.OutEdgesOfType(u, a.UserActionEdgeTypes()) {
			if e.Weight <= 3.0/5 {
				t.Fatalf("user action edge with weight %g: bad rating leaked through", e.Weight)
			}
			if g.NodeType(e.To) != a.Types.Item {
				t.Fatalf("user action edge to non-item node %d", e.To)
			}
		}
	}
}

func TestSimilarEdgesWeightedByCosine(t *testing.T) {
	cfg := SmallConfig()
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, rv := range a.Reviews {
		a.Graph.OutEdges(rv, func(h hin.HalfEdge) bool {
			if h.Type == a.Types.Similar {
				found++
				if h.Weight <= cfg.SimilarityThreshold || h.Weight > 1+1e-9 {
					t.Fatalf("similar edge weight %g outside (%g, 1]", h.Weight, cfg.SimilarityThreshold)
				}
			}
			return true
		})
	}
	if found == 0 {
		t.Fatal("no similar-to edges generated; threshold too strict for the vocabulary")
	}
}

func TestLiteSamplingAndInducedSubgraph(t *testing.T) {
	cfg := SmallConfig()
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lcfg := LiteConfig{Seed: 7, SampleUsers: 10, MinActions: 5, MaxActions: 100, Hops: 2}
	lite, sampled, err := a.Lite(lcfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sampled) != 10 {
		t.Fatalf("sampled %d users, want 10", len(sampled))
	}
	if err := lite.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	if lite.Graph.NumNodes() > a.Graph.NumNodes() {
		t.Fatal("lite graph larger than source")
	}
	actionTypes := lite.UserActionEdgeTypes()
	for _, u := range sampled {
		if lite.Graph.NodeType(u) != lite.Types.User {
			t.Fatalf("sampled node %d is not a user", u)
		}
		n := len(lite.Graph.OutEdgesOfType(u, actionTypes))
		if n < lcfg.MinActions || n > lcfg.MaxActions {
			t.Fatalf("sampled user %d has %d actions outside [%d,%d]", u, n, lcfg.MinActions, lcfg.MaxActions)
		}
	}
	// Inventory lists are consistent with node types.
	for _, it := range lite.Items {
		if lite.Graph.NodeType(it) != lite.Types.Item {
			t.Fatal("item inventory mismatch")
		}
	}
	// Labels carry over, so nodes can be traced back to the source.
	if _, ok := lite.Graph.NodeByLabel(a.Graph.Label(hin.NodeID(0))); !ok {
		// Node 0 is a user; it may legitimately be excluded. Check at
		// least one sampled label instead.
		found := false
		for _, u := range sampled {
			if lite.Graph.Label(u) != "" {
				found = true
				break
			}
		}
		if !found {
			t.Fatal("labels lost in induced subgraph")
		}
	}
}

func TestLiteErrors(t *testing.T) {
	cfg := SmallConfig()
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Lite(LiteConfig{SampleUsers: 0}); err == nil {
		t.Fatal("expected error for SampleUsers=0")
	}
	if _, _, err := a.Lite(LiteConfig{SampleUsers: 5, Hops: -1}); err == nil {
		t.Fatal("expected error for negative hops")
	}
	if _, _, err := a.Lite(LiteConfig{SampleUsers: 5, MinActions: 10000, MaxActions: 20000}); err == nil {
		t.Fatal("expected error when no user qualifies")
	}
}

func TestLiteHopsBoundNeighborhood(t *testing.T) {
	cfg := SmallConfig()
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	zero, sampled, err := a.Lite(LiteConfig{Seed: 1, SampleUsers: 1, MinActions: 1, MaxActions: 1000, Hops: 0})
	if err != nil {
		t.Fatal(err)
	}
	if zero.Graph.NumNodes() != 1 || len(sampled) != 1 {
		t.Fatalf("hops=0 should keep only the sampled user, got %d nodes", zero.Graph.NumNodes())
	}
	one, _, err := a.Lite(LiteConfig{Seed: 1, SampleUsers: 1, MinActions: 1, MaxActions: 1000, Hops: 1})
	if err != nil {
		t.Fatal(err)
	}
	if one.Graph.NumNodes() <= 1 {
		t.Fatal("hops=1 should include the user's items")
	}
	two, _, err := a.Lite(LiteConfig{Seed: 1, SampleUsers: 1, MinActions: 1, MaxActions: 1000, Hops: 2})
	if err != nil {
		t.Fatal(err)
	}
	if two.Graph.NumNodes() < one.Graph.NumNodes() {
		t.Fatal("neighborhood must grow with hops")
	}
}

func TestBooksStory(t *testing.T) {
	b, err := NewBooks()
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	if b.Graph.NumNodes() != 19 {
		t.Fatalf("books graph has %d nodes, want 19", b.Graph.NumNodes())
	}
	// Paul's actions: Candide and C, plus two follows.
	actions := b.Graph.OutEdgesOfType(b.Paul, b.ActionEdgeTypes())
	if len(actions) != 2 {
		t.Fatalf("Paul has %d reading actions, want 2", len(actions))
	}
	if b.Graph.HasEdge(b.Paul, b.HarryPotter) {
		t.Fatal("Paul must not have interacted with the Why-Not item")
	}
	name, ok := b.Graph.NodeByLabel("Harry Potter")
	if !ok || name != b.HarryPotter {
		t.Fatal("labels not resolvable")
	}
}

func TestFullScaleShapeMatchesTable4(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale generation in -short mode")
	}
	a, err := Generate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	g := a.Graph
	// Paper's Amazon Lite: 11831 nodes / 40552 edges; the per-type rows
	// of Table 4. We assert the same order of magnitude and degree
	// profile (DESIGN.md §4 documents the substitution).
	if g.NumNodes() < 8000 || g.NumNodes() > 14000 {
		t.Fatalf("node count %d outside the paper's scale", g.NumNodes())
	}
	if g.NumEdges() < 30000 || g.NumEdges() > 55000 {
		t.Fatalf("edge count %d outside the paper's scale", g.NumEdges())
	}
	for _, row := range hin.DegreeStats(g) {
		switch row.TypeName {
		case TypeUser:
			if row.NumNodes != 120 || row.AvgDegree < 15 || row.AvgDegree > 30 {
				t.Fatalf("user row off: %+v", row)
			}
		case TypeCategory:
			if row.NumNodes != 32 || row.AvgDegree < 200 || row.AvgDegree > 600 {
				t.Fatalf("category row off: %+v", row)
			}
			if row.DegreeStd < 100 {
				t.Fatalf("category degrees should be heavy-tailed: %+v", row)
			}
		case TypeItem:
			if row.NumNodes != 7459 || row.AvgDegree < 1.5 || row.AvgDegree > 8 {
				t.Fatalf("item row off: %+v", row)
			}
		case TypeReview:
			if row.NumNodes < 1500 || row.NumNodes > 3000 || row.AvgDegree < 1.5 || row.AvgDegree > 4 {
				t.Fatalf("review row off: %+v", row)
			}
		}
	}
}
