package dataset

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/why-not-xai/emigre/internal/hin"
)

// LiteConfig parameterizes the "Amazon Lite" extraction of §6.1:
// randomly sample moderate/active users and keep their H-hop
// neighborhood.
type LiteConfig struct {
	Seed int64
	// SampleUsers is the number of users to sample (the paper uses 100).
	SampleUsers int
	// MinActions/MaxActions bound a "moderate/active" user's action
	// count (out-degree over rated+reviewed edges). Paper: 10–100.
	MinActions int
	MaxActions int
	// Hops is the neighborhood radius (paper: 4).
	Hops int
}

// DefaultLiteConfig returns the paper's sampling parameters.
func DefaultLiteConfig() LiteConfig {
	return LiteConfig{Seed: 1, SampleUsers: 100, MinActions: 10, MaxActions: 100, Hops: 4}
}

// Lite extracts the evaluation subgraph: it samples up to
// cfg.SampleUsers users whose action count lies in [MinActions,
// MaxActions], walks cfg.Hops BFS hops from them (over out-edges; the
// graph is bidirectional so this is the full neighborhood), and builds
// the induced subgraph. It returns the new dataset and the sampled
// users' node IDs in the new graph.
func (a *Amazon) Lite(cfg LiteConfig) (*Amazon, []hin.NodeID, error) {
	if cfg.SampleUsers <= 0 {
		return nil, nil, fmt.Errorf("dataset: SampleUsers must be positive, got %d", cfg.SampleUsers)
	}
	if cfg.Hops < 0 {
		return nil, nil, fmt.Errorf("dataset: Hops must be non-negative, got %d", cfg.Hops)
	}
	actionTypes := a.UserActionEdgeTypes()
	var eligible []hin.NodeID
	for _, u := range a.Users {
		actions := len(a.Graph.OutEdgesOfType(u, actionTypes))
		if actions >= cfg.MinActions && actions <= cfg.MaxActions {
			eligible = append(eligible, u)
		}
	}
	if len(eligible) == 0 {
		return nil, nil, fmt.Errorf("dataset: no users with %d-%d actions", cfg.MinActions, cfg.MaxActions)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rng.Shuffle(len(eligible), func(i, j int) { eligible[i], eligible[j] = eligible[j], eligible[i] })
	if len(eligible) > cfg.SampleUsers {
		eligible = eligible[:cfg.SampleUsers]
	}
	sort.Slice(eligible, func(i, j int) bool { return eligible[i] < eligible[j] })

	// BFS to cfg.Hops from all sampled users.
	keep := make(map[hin.NodeID]bool, len(eligible))
	frontier := make([]hin.NodeID, 0, len(eligible))
	for _, u := range eligible {
		keep[u] = true
		frontier = append(frontier, u)
	}
	for hop := 0; hop < cfg.Hops && len(frontier) > 0; hop++ {
		var next []hin.NodeID
		for _, v := range frontier {
			a.Graph.OutEdges(v, func(h hin.HalfEdge) bool {
				if !keep[h.Node] {
					keep[h.Node] = true
					next = append(next, h.Node)
				}
				return true
			})
		}
		frontier = next
	}

	lite, remap, err := a.induced(keep)
	if err != nil {
		return nil, nil, err
	}
	sampled := make([]hin.NodeID, len(eligible))
	for i, u := range eligible {
		sampled[i] = remap[u]
	}
	return lite, sampled, nil
}

// induced builds the subgraph over the kept nodes, preserving labels
// and types, and returns the old→new ID mapping.
func (a *Amazon) induced(keep map[hin.NodeID]bool) (*Amazon, map[hin.NodeID]hin.NodeID, error) {
	g2 := hin.NewGraph()
	types := RegisterTypes(g2.Types())
	out := &Amazon{Graph: g2, Types: types}

	old := make([]hin.NodeID, 0, len(keep))
	for v := range keep {
		old = append(old, v)
	}
	sort.Slice(old, func(i, j int) bool { return old[i] < old[j] })

	reg := a.Graph.Types()
	remap := make(map[hin.NodeID]hin.NodeID, len(old))
	for _, v := range old {
		name := reg.NodeTypeName(a.Graph.NodeType(v))
		id := g2.AddNode(g2.Types().NodeType(name), a.Graph.Label(v))
		remap[v] = id
		switch name {
		case TypeUser:
			out.Users = append(out.Users, id)
		case TypeItem:
			out.Items = append(out.Items, id)
		case TypeCategory:
			out.Categories = append(out.Categories, id)
		case TypeReview:
			out.Reviews = append(out.Reviews, id)
		}
	}
	for _, v := range old {
		var addErr error
		a.Graph.OutEdges(v, func(h hin.HalfEdge) bool {
			if !keep[h.Node] {
				return true
			}
			name := reg.EdgeTypeName(h.Type)
			if err := g2.AddEdge(remap[v], remap[h.Node], g2.Types().EdgeType(name), h.Weight); err != nil {
				addErr = err
				return false
			}
			return true
		})
		if addErr != nil {
			return nil, nil, addErr
		}
	}
	if err := g2.Validate(); err != nil {
		return nil, nil, fmt.Errorf("dataset: induced subgraph invalid: %w", err)
	}
	return out, remap, nil
}
