package dataset

import "testing"

func BenchmarkGenerateRaw(b *testing.B) {
	cfg := SmallConfig()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := GenerateRaw(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildGraph(b *testing.B) {
	raw, err := GenerateRaw(SmallConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildGraph(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLiteExtraction(b *testing.B) {
	a, err := Generate(SmallConfig())
	if err != nil {
		b.Fatal(err)
	}
	cfg := LiteConfig{Seed: 1, SampleUsers: 10, MinActions: 5, MaxActions: 100, Hops: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := a.Lite(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNewBooks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := NewBooks(); err != nil {
			b.Fatal(err)
		}
	}
}
