// Package admit is the repo's weighted admission controller: a
// weighted semaphore with a bounded FIFO wait queue and a load-aware
// Retry-After estimate. It started life inside internal/server (PR 1)
// gating explanation searches; it now also fronts the multi-backend
// router (internal/router), so the overload policy — admit up to
// capacity units, queue a bounded number of waiters, shed the rest
// with ErrSaturated — is shared by every serving tier.
package admit

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"time"

	"github.com/why-not-xai/emigre/internal/obs"
)

// ErrSaturated is returned by Controller.Acquire when both the
// concurrency slots and the wait queue are full. HTTP layers map it to
// 503 + Retry-After.
var ErrSaturated = errors.New("admit: saturated, try again later")

// Controller is a weighted semaphore with a bounded FIFO wait queue —
// an overload policy. Capacity units model concurrent work (a group
// query costs more than a single-item one); at most maxQueue requests
// may wait for units, and any request beyond that is rejected
// immediately with ErrSaturated instead of piling up.
type Controller struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	maxQueue int
	waiters  []*waiter

	// holdPerUnit is an EWMA (1/8 gain) of the observed hold time per
	// admitted unit, fed by ReleaseObserved. It is the basis of the
	// load-aware Retry-After estimate: with the gate saturated, a
	// rejected request can expect to wait roughly
	// holdPerUnit × backlog / capacity before units free up.
	holdPerUnit float64 // nanoseconds per unit; 0 until the first sample

	// Optional saturation counters (obs metrics are nil-safe, so a
	// controller built without a registry records nothing). Rejections
	// counts Acquire calls shed with ErrSaturated; Clamped counts
	// Acquire calls whose requested weight exceeded capacity and was
	// silently clamped down — the signal that capacity is undersized
	// for the workload's widest requests. Set them (if at all) before
	// the controller takes traffic.
	Rejections *obs.Counter
	Clamped    *obs.Counter
}

// Retry-After bounds: never tell a client to come back sooner than 1s
// (sub-second retries stampede) or later than 30s (the estimate is an
// EWMA, not a promise).
const (
	minRetryAfter = 1
	maxRetryAfter = 30
)

// retryAfterJitter supplies the jitter draw for RetryAfterSeconds;
// a variable so tests can pin it.
var retryAfterJitter = rand.Float64

type waiter struct {
	n     int64
	ready chan struct{}
}

// New builds a controller with the given capacity and wait queue
// bound. maxQueue 0 means no queueing: a request either gets its units
// immediately or is rejected.
func New(capacity int64, maxQueue int) *Controller {
	if capacity < 1 {
		capacity = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Controller{capacity: capacity, maxQueue: maxQueue}
}

// clamp bounds a request's weight to [1, capacity] so every request is
// satisfiable. Acquire and Release apply the same clamp, so callers can
// pass the raw weight to both.
func (a *Controller) clamp(n int64) int64 {
	if n < 1 {
		n = 1
	}
	if n > a.capacity {
		n = a.capacity
	}
	return n
}

// Acquire obtains n units, waiting in FIFO order behind earlier
// requests. It returns ErrSaturated without blocking when the wait
// queue is full, and ctx.Err() when the context is done before units
// become available.
func (a *Controller) Acquire(ctx context.Context, n int64) error {
	if n > a.capacity {
		// Counted here and not in clamp: Release re-clamps the same raw
		// weight, which must not double-count the event.
		a.Clamped.Inc()
	}
	n = a.clamp(n)
	a.mu.Lock()
	if a.used+n <= a.capacity && len(a.waiters) == 0 {
		a.used += n
		a.mu.Unlock()
		return nil
	}
	if len(a.waiters) >= a.maxQueue {
		a.mu.Unlock()
		a.Rejections.Inc()
		return ErrSaturated
	}
	w := &waiter{n: n, ready: make(chan struct{})}
	a.waiters = append(a.waiters, w)
	a.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		a.mu.Lock()
		found := false
		for i, x := range a.waiters {
			if x == w {
				a.waiters = append(a.waiters[:i], a.waiters[i+1:]...)
				found = true
				break
			}
		}
		if !found {
			// The grant raced the cancellation: units are already ours,
			// hand them back.
			a.used -= n
		}
		a.grantLocked()
		a.mu.Unlock()
		return ctx.Err()
	}
}

// Release returns n units and wakes queued waiters that now fit.
func (a *Controller) Release(n int64) { a.ReleaseObserved(n, 0) }

// ReleaseObserved returns n units like Release and, when held > 0,
// folds the observed hold time into the per-unit EWMA behind
// RetryAfterSeconds.
func (a *Controller) ReleaseObserved(n int64, held time.Duration) {
	n = a.clamp(n)
	a.mu.Lock()
	a.used -= n
	if a.used < 0 {
		a.used = 0 // defensive: a double release must not wedge the gate
	}
	if held > 0 {
		sample := float64(held) / float64(n)
		//lint:allow floateq zero is the exact "no samples yet" sentinel, never a computed value
		if a.holdPerUnit == 0 {
			a.holdPerUnit = sample
		} else {
			a.holdPerUnit += (sample - a.holdPerUnit) / 8
		}
	}
	a.grantLocked()
	a.mu.Unlock()
}

// RetryAfterSeconds estimates, from current load, how long a rejected
// request should wait before retrying: the EWMA hold time per unit
// times the backlog (admitted + queued units), spread over capacity,
// with ±25% jitter so shed clients do not return in lockstep. The
// result is clamped to [minRetryAfter, maxRetryAfter] seconds.
func (a *Controller) RetryAfterSeconds() int {
	a.mu.Lock()
	per := a.holdPerUnit
	backlog := a.used
	for _, w := range a.waiters {
		backlog += w.n
	}
	capacity := a.capacity
	a.mu.Unlock()
	//lint:allow floateq zero is the exact "no samples yet" sentinel, never a computed value
	if per == 0 {
		per = float64(time.Second) // no samples yet: assume 1s per unit
	}
	wait := per * float64(backlog+1) / float64(capacity)
	wait *= 0.75 + 0.5*retryAfterJitter()
	secs := int(math.Ceil(wait / float64(time.Second)))
	if secs < minRetryAfter {
		secs = minRetryAfter
	}
	if secs > maxRetryAfter {
		secs = maxRetryAfter
	}
	return secs
}

// Used returns the units currently admitted.
func (a *Controller) Used() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.used
}

// QueueLen returns the number of requests waiting for admission.
func (a *Controller) QueueLen() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return int64(len(a.waiters))
}

// grantLocked grants units to queued waiters in FIFO order, stopping at
// the first one that does not fit (no overtaking, so wide requests
// cannot starve).
func (a *Controller) grantLocked() {
	for len(a.waiters) > 0 {
		w := a.waiters[0]
		if a.used+w.n > a.capacity {
			return
		}
		a.used += w.n
		a.waiters = a.waiters[1:]
		close(w.ready)
	}
}
