package admit

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/why-not-xai/emigre/internal/obs"
)

func TestAdmissionImmediateGrant(t *testing.T) {
	a := New(2, 0)
	if err := a.Acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	if err := a.Acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	// Full and no queue: reject.
	if err := a.Acquire(context.Background(), 1); !errors.Is(err, ErrSaturated) {
		t.Fatalf("err = %v, want ErrSaturated", err)
	}
	a.Release(1)
	if err := a.Acquire(context.Background(), 1); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

func TestAdmissionClampsWideRequests(t *testing.T) {
	a := New(2, 0)
	// A request wider than capacity is clamped, not deadlocked.
	if err := a.Acquire(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	if err := a.Acquire(context.Background(), 1); !errors.Is(err, ErrSaturated) {
		t.Fatalf("err = %v, want ErrSaturated while clamped request holds all units", err)
	}
	a.Release(100) // same clamp on release keeps the books balanced
	if err := a.Acquire(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
}

func TestAdmissionQueueBound(t *testing.T) {
	a := New(1, 1)
	if err := a.Acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	// One waiter fits in the queue...
	done := make(chan error, 1)
	go func() { done <- a.Acquire(context.Background(), 1) }()
	waitForWaiters(t, a, 1)
	// ...the next is shed immediately.
	if err := a.Acquire(context.Background(), 1); !errors.Is(err, ErrSaturated) {
		t.Fatalf("err = %v, want ErrSaturated with full queue", err)
	}
	a.Release(1)
	if err := <-done; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	a.Release(1)
}

func TestAdmissionWaiterHonorsContext(t *testing.T) {
	a := New(1, 4)
	if err := a.Acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := a.Acquire(ctx, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	// The abandoned waiter must not leak queue slots or units.
	a.Release(1)
	if err := a.Acquire(context.Background(), 1); err != nil {
		t.Fatalf("after waiter timeout: %v", err)
	}
	a.Release(1)
}

// TestAdmissionFIFONoOvertaking: a wide request queued first is granted
// before a narrow one queued later, even though the narrow one would fit
// sooner — otherwise group queries could starve forever.
func TestAdmissionFIFONoOvertaking(t *testing.T) {
	a := New(2, 4)
	if err := a.Acquire(context.Background(), 2); err != nil {
		t.Fatal(err)
	}
	order := make(chan string, 2)
	go func() {
		if a.Acquire(context.Background(), 2) == nil {
			order <- "wide"
			a.Release(2)
		}
	}()
	waitForWaiters(t, a, 1)
	go func() {
		if a.Acquire(context.Background(), 1) == nil {
			order <- "narrow"
			a.Release(1)
		}
	}()
	waitForWaiters(t, a, 2)
	a.Release(2)
	if first := <-order; first != "wide" {
		t.Fatalf("first grant = %q, want wide (FIFO)", first)
	}
	<-order
}

// TestAdmissionStress hammers the gate from many goroutines; run with
// -race. The invariant: used never exceeds capacity.
func TestAdmissionStress(t *testing.T) {
	a := New(3, 64)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		n := int64(1 + i%3)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				err := a.Acquire(context.Background(), n)
				if errors.Is(err, ErrSaturated) {
					continue
				}
				if err != nil {
					t.Error(err)
					return
				}
				a.mu.Lock()
				over := a.used > a.capacity
				a.mu.Unlock()
				if over {
					t.Error("used exceeds capacity")
				}
				a.Release(n)
			}
		}()
	}
	wg.Wait()
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.used != 0 || len(a.waiters) != 0 {
		t.Fatalf("leaked state: used=%d waiters=%d", a.used, len(a.waiters))
	}
}

func waitForWaiters(t *testing.T, a *Controller, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		a.mu.Lock()
		got := len(a.waiters)
		a.mu.Unlock()
		if got >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("never saw %d waiters", n)
}

// TestAdmissionClampContract documents the clamp contract end to end
// and pins its observability counter: a weight outside [1, capacity]
// is clamped on both Acquire and Release (so callers may pass the raw
// weight to both), but only Acquire counts the clamp — Release
// re-clamping the same raw weight must not double-count the event.
func TestAdmissionClampContract(t *testing.T) {
	a := New(4, 0)
	reg := obs.NewRegistry()
	a.Clamped = reg.Counter("emigre_admit_test_clamped_weights_total", "t")
	a.Rejections = reg.Counter("emigre_admit_test_rejections_total", "t")

	// Over-capacity weight: admitted, occupying exactly capacity units.
	if err := a.Acquire(context.Background(), 9); err != nil {
		t.Fatal(err)
	}
	if got := a.Used(); got != 4 {
		t.Fatalf("Used = %d, want capacity 4 (clamped)", got)
	}
	if got := a.Clamped.Value(); got != 1 {
		t.Fatalf("clamped counter = %d, want 1", got)
	}

	// The gate is full: the next request is shed and counted.
	if err := a.Acquire(context.Background(), 1); !errors.Is(err, ErrSaturated) {
		t.Fatalf("err = %v, want ErrSaturated", err)
	}
	if got := a.Rejections.Value(); got != 1 {
		t.Fatalf("rejections counter = %d, want 1", got)
	}

	// Releasing the same raw weight balances the books without a second
	// clamp event.
	a.Release(9)
	if got := a.Used(); got != 0 {
		t.Fatalf("Used after release = %d, want 0", got)
	}
	if got := a.Clamped.Value(); got != 1 {
		t.Fatalf("clamped counter after release = %d, want 1 (no double count)", got)
	}

	// Sub-minimum weights are clamped up to 1 silently: that clamp is
	// the "every request is satisfiable" floor, not a saturation
	// signal, so the counter must not move.
	if err := a.Acquire(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if got, want := a.Used(), int64(1); got != want {
		t.Fatalf("Used = %d, want %d", got, want)
	}
	if got := a.Clamped.Value(); got != 1 {
		t.Fatalf("clamped counter after sub-minimum acquire = %d, want 1", got)
	}
	a.Release(0)

	// A controller without counters (nil obs metrics) keeps working.
	bare := New(1, 0)
	if err := bare.Acquire(context.Background(), 5); err != nil {
		t.Fatal(err)
	}
	bare.Release(5)
}
