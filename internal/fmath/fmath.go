// Package fmath centralizes the floating-point comparisons the rest of
// the codebase is forbidden to write inline (enforced by the floateq
// analyzer in internal/lint). PPR scores are sums of many float64
// terms whose low bits depend on summation order, so a bare == is
// either a tolerance bug or an undocumented exact-equality contract.
// Routing every comparison through this package makes the contract
// explicit and auditable in one place:
//
//   - ApproxEq / EqWithin compare computed quantities under a
//     tolerance;
//   - Eq and Before are deliberately exact — they implement the
//     zero-value option sentinel and the ranking tie-break contract,
//     where bitwise equality is the specification (the cache A/B tests
//     pin rankings byte-identical, so a tolerance here would change
//     observable results).
package fmath

import "math"

// Eq reports exact (bitwise) equality of a and b. Use it only where
// exact equality is the contract — zero-value "option not set"
// sentinels, exact fast-path gates like β == 1 — never for comparing
// computed scores; those take ApproxEq.
//
//lint:allow floateq fmath is the audited home of exact float comparison
func Eq(a, b float64) bool { return a == b }

// Before reports whether a score/tie pair ranks strictly before
// another: higher score first, exact score ties broken toward the
// lower tie key (node ID). This is the single ordering contract used
// by the recommender's TopN/RankOf, the explainer's dynamic check and
// the PRINCE action ranking; the exact tie keeps rankings
// deterministic and byte-identical with caching on and off.
//
//lint:allow floateq exact tie-break is the ranking contract
func Before(scoreA, scoreB float64, tieA, tieB int) bool {
	if scoreA != scoreB {
		return scoreA > scoreB
	}
	return tieA < tieB
}

// EqWithin reports |a-b| <= tol. NaN is never within tolerance of
// anything; infinities are within tolerance only of themselves.
//
//lint:allow floateq the exact comparisons handle the infinite cases
func EqWithin(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	return math.Abs(a-b) <= tol
}

// ApproxEq reports equality under the blended relative/absolute
// tolerance |a-b| <= tol * (1 + max(|a|,|b|)): absolute for
// magnitudes below 1 (PPR scores), relative above.
func ApproxEq(a, b, tol float64) bool {
	return EqWithin(a, b, tol*(1+math.Max(math.Abs(a), math.Abs(b))))
}
