package fmath

import (
	"math"
	"testing"
)

func TestEq(t *testing.T) {
	if !Eq(0, 0) || !Eq(1.5, 1.5) {
		t.Fatal("Eq must be exact equality")
	}
	a := 1.0
	b := math.Nextafter(a, 2)
	if Eq(a, b) {
		t.Fatal("Eq must distinguish adjacent floats")
	}
}

func TestBefore(t *testing.T) {
	cases := []struct {
		sa, sb   float64
		ta, tb   int
		expected bool
	}{
		{2, 1, 5, 0, true},  // higher score wins regardless of tie key
		{1, 2, 0, 5, false}, // lower score loses
		{1, 1, 2, 7, true},  // exact tie: lower key first
		{1, 1, 7, 2, false}, // exact tie: higher key second
		{1, 1, 3, 3, false}, // full tie is not strictly before
		{0, -0.5, 9, 1, true},
	}
	for _, c := range cases {
		if got := Before(c.sa, c.sb, c.ta, c.tb); got != c.expected {
			t.Errorf("Before(%g,%g,%d,%d) = %v, want %v", c.sa, c.sb, c.ta, c.tb, got, c.expected)
		}
	}
	// A near-tie is NOT a tie: Before must not use a tolerance.
	a := 0.25
	b := math.Nextafter(a, 1)
	if !Before(b, a, 9, 1) {
		t.Fatal("Before must treat adjacent floats as distinct scores")
	}
}

func TestEqWithin(t *testing.T) {
	if !EqWithin(1.0, 1.0+5e-10, 1e-9) {
		t.Fatal("within tolerance")
	}
	if EqWithin(1.0, 1.0+2e-9, 1e-9) {
		t.Fatal("outside tolerance")
	}
	if EqWithin(math.NaN(), math.NaN(), 1) {
		t.Fatal("NaN never compares equal")
	}
	if !EqWithin(math.Inf(1), math.Inf(1), 1e-9) {
		t.Fatal("equal infinities match")
	}
	if EqWithin(math.Inf(1), math.Inf(-1), math.Inf(1)) {
		t.Fatal("opposite infinities never match")
	}
	if EqWithin(math.Inf(1), 1e300, 1e9) {
		t.Fatal("infinity never matches a finite value")
	}
}

func TestApproxEq(t *testing.T) {
	// Absolute regime: tiny PPR scores.
	if !ApproxEq(1e-8, 1.0000001e-8, 1e-9) {
		t.Fatal("absolute tolerance floor")
	}
	// Relative regime: large magnitudes scale the tolerance.
	if !ApproxEq(1e6, 1e6+0.5, 1e-6) {
		t.Fatal("relative tolerance for large values")
	}
	if ApproxEq(1e6, 1e6+10, 1e-6) {
		t.Fatal("outside relative tolerance")
	}
}
