package load

import (
	"encoding/json"
	"math"
	"testing"

	"github.com/why-not-xai/emigre/internal/fmath"
)

// TestBuildReportDegenerateWindows pins the rate-math guard: an empty
// or instant session must produce a report of exact zeros that still
// marshals to JSON and still emits a (zero) qps metric for the perf
// gate. Pre-fix, a NaN window made json.Marshal fail outright, a
// sub-measurable window manufactured absurd QPS, and a zero window
// dropped qps from the benchfmt output so Diff silently skipped it.
func TestBuildReportDegenerateWindows(t *testing.T) {
	recs := []Record{
		{Request: Request{Op: "explain"}, Status: 200, LatencyUS: 1000},
		{Request: Request{Op: "explain"}, Status: 200, LatencyUS: 2000},
	}
	cases := []struct {
		name      string
		recs      []Record
		durationS float64
	}{
		{"empty records, zero window", nil, 0},
		{"zero window", recs, 0},
		{"negative window", recs, -3},
		{"NaN window", recs, math.NaN()},
		{"+Inf window", recs, math.Inf(1)},
		{"sub-measurable window", recs, 1e-9},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := BuildReport(tc.recs, nil, nil, tc.durationS)
			if !fmath.Eq(rep.DurationS, 0) {
				t.Fatalf("DurationS = %v, want exact 0", rep.DurationS)
			}
			if !fmath.Eq(rep.QPS, 0) {
				t.Fatalf("QPS = %v, want exact 0", rep.QPS)
			}
			if math.IsNaN(rep.QPS) || math.IsInf(rep.QPS, 0) {
				t.Fatalf("QPS = %v, want finite", rep.QPS)
			}
			raw, err := json.Marshal(rep)
			if err != nil {
				t.Fatalf("report does not marshal: %v", err)
			}
			var back Report
			if err := json.Unmarshal(raw, &back); err != nil {
				t.Fatalf("report does not round-trip: %v", err)
			}

			f := rep.ToBenchFmt("degenerate")
			for _, res := range f.Results {
				qps, ok := res.Metrics["qps"]
				if !ok {
					t.Fatalf("%s: qps metric missing — Diff would silently skip the throughput gate", res.Name)
				}
				if !fmath.Eq(qps, 0) {
					t.Fatalf("%s: qps = %v, want exact 0", res.Name, qps)
				}
			}
			if len(tc.recs) > 0 && len(f.Results) == 0 {
				t.Fatal("benchfmt output empty despite records")
			}
		})
	}
}

// TestBuildReportMeasurableWindowUnchanged: the guard must not touch
// legitimate windows — a 10s run keeps its real QPS.
func TestBuildReportMeasurableWindowUnchanged(t *testing.T) {
	recs := []Record{
		{Request: Request{Op: "explain"}, Status: 200, LatencyUS: 1000},
		{Request: Request{Op: "explain"}, Status: 200, LatencyUS: 2000},
	}
	rep := BuildReport(recs, nil, nil, 10)
	if !fmath.Eq(rep.QPS, 0.2) {
		t.Fatalf("QPS = %v, want 0.2", rep.QPS)
	}
	f := rep.ToBenchFmt("ok")
	if len(f.Results) == 0 {
		t.Fatal("no benchfmt results")
	}
	for _, res := range f.Results {
		if !fmath.Eq(res.Metrics["qps"], 0.2) {
			t.Fatalf("%s: qps = %v, want 0.2", res.Name, res.Metrics["qps"])
		}
	}
}
