package load

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/why-not-xai/emigre/client"
	"github.com/why-not-xai/emigre/internal/obs"
	"github.com/why-not-xai/emigre/internal/testleak"
)

func testConfig() Config {
	return Config{
		Seed:     42,
		Count:    200,
		Users:    []string{"Paul", "Alice", "Dan", "Greg", "Hank", "Clara", "Fiona"},
		Items:    []string{"Harry Potter", "Candide", "C", "Python"},
		UserSkew: 1.2,
		ItemSkew: 1.5,
		OpMix:    map[string]float64{OpExplain: 0.7, OpRecommend: 0.25, OpDiagnose: 0.05},
		ModeMix:  map[string]float64{"remove": 0.6, "add": 0.4},
		MethodMix: map[string]float64{
			"powerset": 0.5, "incremental": 0.5,
		},
		Arrival: ArrivalPoisson,
		Rate:    500,
	}
}

// TestGenerateDeterministic: same seed + config = byte-identical
// stream; a different seed diverges.
func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Fatal("same seed produced different streams")
	}
	cfg := testConfig()
	cfg.Seed = 43
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	jc, _ := json.Marshal(c)
	if bytes.Equal(ja, jc) {
		t.Fatal("different seeds produced identical streams")
	}
}

// TestGenerateShape: mixes, arrival offsets and skew all materialize.
func TestGenerateShape(t *testing.T) {
	reqs, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	ops := map[string]int{}
	users := map[string]int{}
	rids := map[string]bool{}
	lastOffset := int64(-1)
	for _, r := range reqs {
		ops[r.Op]++
		users[r.User]++
		if rids[r.RID] {
			t.Fatalf("duplicate rid %s", r.RID)
		}
		rids[r.RID] = true
		if r.OffsetUS < lastOffset {
			t.Fatalf("offsets not monotone: %d after %d", r.OffsetUS, lastOffset)
		}
		lastOffset = r.OffsetUS
		switch r.Op {
		case OpExplain:
			if r.WNI == "" || r.Mode == "" || r.Method == "" {
				t.Fatalf("incomplete explain request: %+v", r)
			}
		case OpRecommend:
			if r.N != 10 {
				t.Fatalf("recommend without default n: %+v", r)
			}
		case OpDiagnose:
			if r.WNI == "" || r.Mode == "" {
				t.Fatalf("incomplete diagnose request: %+v", r)
			}
		}
	}
	if ops[OpExplain] == 0 || ops[OpRecommend] == 0 {
		t.Fatalf("op mix did not materialize: %v", ops)
	}
	if ops[OpExplain] < ops[OpRecommend] {
		t.Fatalf("explain weighted 0.7 vs 0.25 but drew less: %v", ops)
	}
	// Zipf skew: the most popular user must dominate a uniform share.
	maxUser := 0
	for _, n := range users {
		if n > maxUser {
			maxUser = n
		}
	}
	if maxUser <= len(reqs)/len(testConfig().Users) {
		t.Fatalf("user skew did not concentrate traffic: %v", users)
	}
	if lastOffset <= 0 {
		t.Fatal("poisson offsets never advanced")
	}
}

func TestGenerateRejects(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Count = 0 },
		func(c *Config) { c.Users = nil },
		func(c *Config) { c.Items = nil },
		func(c *Config) { c.UserSkew = 0.5 },
		func(c *Config) { c.OpMix = map[string]float64{"nope": 1} },
		func(c *Config) { c.OpMix = map[string]float64{OpExplain: -1} },
		func(c *Config) { c.Arrival = "bursty" },
		func(c *Config) { c.Rate = 0 },
		func(c *Config) { c.ModeMix = map[string]float64{"remove": 0} },
	}
	for i, mutate := range bad {
		cfg := testConfig()
		mutate(&cfg)
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

// TestSessionLogRoundTrip: encode → decode is lossless.
func TestSessionLogRoundTrip(t *testing.T) {
	recs := []Record{
		{Request: Request{Seq: 0, RID: "a1", Op: OpExplain, User: "Paul", WNI: "C",
			Mode: "remove", Method: "powerset", OffsetUS: 10},
			Status: 200, LatencyUS: 1500, Attempts: 1, Degraded: true,
			DegradedLevel: "lean", CacheHits: 3, CacheMisses: 1, ParCommitted: 2},
		{Request: Request{Seq: 1, RID: "a2", Op: OpRecommend, User: "Alice", N: 10, OffsetUS: 20},
			Status: 503, LatencyUS: 900, Err: "server returned 503: saturated"},
	}
	var buf bytes.Buffer
	if err := WriteLog(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(recs)
	jb, _ := json.Marshal(got)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("round trip lost data:\n%s\n%s", ja, jb)
	}
}

func TestDecodeLineRejects(t *testing.T) {
	cases := []string{
		"",
		"   ",
		"{not json",
		`{"v":2,"seq":0,"rid":"x","op":"explain","user":"u","offset_us":0,"start_us":0,"status":200,"latency_us":1}`,
		`{"v":1,"seq":0,"rid":"","op":"explain","user":"u","offset_us":0,"start_us":0,"status":200,"latency_us":1}`,
		`{"v":1,"seq":-2,"rid":"x","op":"explain","user":"u","offset_us":0,"start_us":0,"status":200,"latency_us":1}`,
		`{"v":1,"seq":0,"rid":"x","op":"mutate","user":"u","offset_us":0,"start_us":0,"status":200,"latency_us":1}`,
		`{"v":1,"seq":0,"rid":"x","op":"explain","user":"u","offset_us":0,"start_us":0,"status":200,"latency_us":1,"bogus":true}`,
		`{"v":1,"seq":0,"rid":"x","op":"explain","user":"u","offset_us":0,"start_us":0,"status":200,"latency_us":1}{"v":1}`,
	}
	for _, in := range cases {
		if _, err := DecodeLine([]byte(in)); err == nil {
			t.Errorf("DecodeLine(%q): expected error", in)
		}
	}
}

// stubServer records incoming requests in arrival order and returns
// canned JSON per endpoint.
type stubServer struct {
	mu   sync.Mutex
	seen []stubHit
}

type stubHit struct {
	Path string
	RID  string
	Body string
}

func (s *stubServer) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var body []byte
		if r.Body != nil {
			body, _ = readAll(r)
		}
		s.mu.Lock()
		s.seen = append(s.seen, stubHit{
			Path: r.URL.Path + "?" + r.URL.RawQuery,
			RID:  r.Header.Get(client.RequestIDHeader),
			Body: string(body),
		})
		s.mu.Unlock()
		w.Header().Set(client.RequestIDHeader, r.Header.Get(client.RequestIDHeader))
		w.Header().Set("X-Emigre-Cache", "2h/1m")
		w.Header().Set("X-Emigre-Par", "3c/0w")
		switch r.URL.Path {
		case "/explain":
			json.NewEncoder(w).Encode(map[string]any{
				"mode": "remove", "method": "powerset", "verified": true,
				"degraded": true, "degraded_level": "lean",
			})
		case "/recommend":
			json.NewEncoder(w).Encode(map[string]any{"user": 1, "items": []any{}})
		case "/diagnose":
			json.NewEncoder(w).Encode(map[string]any{"kind": "k", "detail": "d"})
		default:
			http.NotFound(w, r)
		}
	})
}

func readAll(r *http.Request) ([]byte, error) {
	defer r.Body.Close()
	var buf bytes.Buffer
	_, err := buf.ReadFrom(r.Body)
	return buf.Bytes(), err
}

func (s *stubServer) hits() []stubHit {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]stubHit(nil), s.seen...)
}

func newLoadClient(t *testing.T, url string) *client.Client {
	t.Helper()
	cl, err := client.New(client.Config{BaseURL: url, MaxAttempts: 2,
		BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

// TestReplayReproducesRecordedSequence is the tentpole acceptance test:
// capture a run, replay its session log single-worker, and require the
// server to see the same request sequence — order, paths, bodies and
// logical IDs — both times.
func TestReplayReproducesRecordedSequence(t *testing.T) {
	testleak.Check(t) // Run's worker pool must not outlive the run
	cfg := testConfig()
	cfg.Count = 40
	reqs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Capture run: closed-loop single worker for a deterministic
	// arrival order at the server.
	capture := &stubServer{}
	ts := httptest.NewServer(capture.handler())
	defer ts.Close()
	recs, err := Run(context.Background(), RunConfig{
		Client:   newLoadClient(t, ts.URL),
		Requests: reqs,
		Closed:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(reqs) {
		t.Fatalf("recorded %d of %d requests", len(recs), len(reqs))
	}

	// Session log round trip: write, read back, extract the stream.
	var buf bytes.Buffer
	if err := WriteLog(&buf, recs); err != nil {
		t.Fatal(err)
	}
	replayRecs, err := ReadLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	replayReqs := Requests(replayRecs)
	ja, _ := json.Marshal(reqs)
	jb, _ := json.Marshal(replayReqs)
	if !bytes.Equal(ja, jb) {
		t.Fatal("request stream did not survive the session log")
	}

	// Replay run against a second server.
	replay := &stubServer{}
	ts2 := httptest.NewServer(replay.handler())
	defer ts2.Close()
	if _, err := Run(context.Background(), RunConfig{
		Client:   newLoadClient(t, ts2.URL),
		Requests: replayReqs,
		Closed:   true,
	}); err != nil {
		t.Fatal(err)
	}

	a, b := capture.hits(), replay.hits()
	if len(a) != len(b) {
		t.Fatalf("capture saw %d requests, replay saw %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs:\ncapture: %+v\nreplay:  %+v", i, a[i], b[i])
		}
	}
	if a[0].RID == "" {
		t.Fatal("requests carried no logical IDs")
	}
}

// TestRunRecordsOutcomes: statuses, latencies, degraded marks and
// header tallies all land in the records.
func TestRunRecordsOutcomes(t *testing.T) {
	testleak.Check(t)
	stub := &stubServer{}
	ts := httptest.NewServer(stub.handler())
	defer ts.Close()
	reqs := []Request{
		{Seq: 0, RID: "r0", Op: OpExplain, User: "u", WNI: "x", Mode: "remove", Method: "powerset"},
		{Seq: 1, RID: "r1", Op: OpRecommend, User: "u", N: 5},
		{Seq: 2, RID: "r2", Op: OpDiagnose, User: "u", WNI: "x", Mode: "remove"},
	}
	recs, err := Run(context.Background(), RunConfig{
		Client: newLoadClient(t, ts.URL), Requests: reqs, Closed: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range recs {
		if r.Seq != i {
			t.Fatalf("records not ordered by seq: %+v", recs)
		}
		if r.Status != 200 {
			t.Errorf("record %d status = %d", i, r.Status)
		}
		if r.Attempts != 1 {
			t.Errorf("record %d attempts = %d", i, r.Attempts)
		}
		if r.CacheHits != 2 || r.CacheMisses != 1 || r.ParCommitted != 3 {
			t.Errorf("record %d tallies = %+v", i, r)
		}
	}
	if !recs[0].Degraded || recs[0].DegradedLevel != "lean" {
		t.Errorf("explain degraded marks lost: %+v", recs[0])
	}
}

// TestRunOpenLoopPacing: open-loop dispatch honors scheduled offsets
// (scaled by Speed) rather than firing everything at once.
func TestRunOpenLoopPacing(t *testing.T) {
	testleak.Check(t)
	stub := &stubServer{}
	ts := httptest.NewServer(stub.handler())
	defer ts.Close()
	reqs := []Request{
		{Seq: 0, RID: "p0", Op: OpRecommend, User: "u", N: 1, OffsetUS: 0},
		{Seq: 1, RID: "p1", Op: OpRecommend, User: "u", N: 1, OffsetUS: 120_000},
	}
	start := time.Now()
	recs, err := Run(context.Background(), RunConfig{
		Client: newLoadClient(t, ts.URL), Requests: reqs, Speed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Fatalf("run finished in %v, want >= 100ms (second request scheduled at +120ms)", elapsed)
	}
	if recs[1].StartUS < 100_000 {
		t.Fatalf("request 1 dispatched at %dus, want >= 100ms", recs[1].StartUS)
	}
	// Speed 2 halves the schedule.
	start = time.Now()
	if _, err := Run(context.Background(), RunConfig{
		Client: newLoadClient(t, ts.URL), Requests: reqs, Speed: 2,
	}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 110*time.Millisecond {
		t.Fatalf("2x replay took %v, want ~60ms schedule", elapsed)
	}
}

// TestBuildReport: percentile math, per-op slicing, scrape deltas and
// the benchfmt projection.
func TestBuildReport(t *testing.T) {
	var recs []Record
	for i := 0; i < 100; i++ {
		recs = append(recs, Record{
			Request:   Request{Seq: i, RID: "x", Op: OpExplain, User: "u"},
			Status:    200,
			LatencyUS: int64((i + 1) * 1000), // 1ms..100ms
			Attempts:  1,
		})
	}
	recs[99].Status = 503
	recs[99].Err = "saturated"
	recs[42].Degraded = true
	recs[42].DegradedLevel = "cache_only"
	recs = append(recs, Record{
		Request: Request{Seq: 100, RID: "y", Op: OpRecommend, User: "u"},
		Status:  200, LatencyUS: 500, Attempts: 1,
	})

	before, err := obs.ParseExposition([]byte("# TYPE emigre_admission_rejections_total counter\nemigre_admission_rejections_total 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	after, err := obs.ParseExposition([]byte("# TYPE emigre_admission_rejections_total counter\nemigre_admission_rejections_total 7\n"))
	if err != nil {
		t.Fatal(err)
	}

	rep := BuildReport(recs, before, after, 10)
	if rep.Requests != 101 || rep.QPS != 10.1 {
		t.Errorf("totals: %+v", rep)
	}
	ex := rep.Endpoints[OpExplain]
	if ex == nil || ex.Count != 100 || ex.Errors != 1 {
		t.Fatalf("explain slice: %+v", ex)
	}
	if ex.Latency.P50 != 50_000 || ex.Latency.P99 != 99_000 || ex.Latency.Max != 100_000 {
		t.Errorf("percentiles: %+v", ex.Latency)
	}
	if ex.Degraded["cache_only"] != 1 {
		t.Errorf("degraded histogram: %+v", ex.Degraded)
	}
	if ex.Rate503 != 0.01 {
		t.Errorf("rate_503 = %v", ex.Rate503)
	}
	if rep.MetricsDelta["emigre_admission_rejections_total"] != 5 {
		t.Errorf("metrics delta: %+v", rep.MetricsDelta)
	}

	bf := rep.ToBenchFmt("test run")
	if got := bf.Result("loadgen/explain"); got == nil || got.Metrics["p99_us"] != 99_000 {
		t.Errorf("benchfmt explain: %+v", got)
	} else if got.Metrics["ns/op"] != got.Metrics["mean_us"]*1e3 {
		t.Errorf("benchfmt ns/op not derived from mean: %+v", got.Metrics)
	}
	total := bf.Result("loadgen/total")
	if total == nil || total.Iterations != 101 {
		t.Errorf("benchfmt total: %+v", total)
	}
	if total.Metrics["qps"] != 10.1 {
		t.Errorf("benchfmt qps: %v", total.Metrics)
	}
	if !strings.Contains(rep.Render(), "explain") {
		t.Error("Render missing endpoint lines")
	}
}
