package load

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// LogVersion is the session-log record version. Decoding rejects
// records stamped with any other version, so format changes fail
// loudly at read time instead of producing silently-wrong replays.
const LogVersion = 1

// Record is one request/response pair of a session log: the request as
// issued (replayable verbatim) plus the observed outcome.
type Record struct {
	// V is the record format version (LogVersion).
	V int `json:"v"`
	Request
	// StartUS is when the request was actually dispatched, microseconds
	// from run start (OffsetUS is when it was scheduled; the difference
	// is scheduler lag).
	StartUS int64 `json:"start_us"`
	// Status is the HTTP status of the call's outcome: the final
	// response status, or 0 when no response arrived (transport error,
	// context expiry).
	Status int `json:"status"`
	// LatencyUS is the logical call's wall time in microseconds,
	// retries and backoff included — what the caller experienced.
	LatencyUS int64 `json:"latency_us"`
	// Err is the terminal error string for failed calls.
	Err string `json:"err,omitempty"`
	// Attempts is how many HTTP attempts the call took.
	Attempts int `json:"attempts,omitempty"`
	// Degraded marks a below-full-fidelity explanation;
	// DegradedLevel names the ladder rung.
	Degraded      bool   `json:"degraded,omitempty"`
	DegradedLevel string `json:"degraded_level,omitempty"`
	// Cache and pipeline tallies from the server's response headers.
	CacheHits    int64 `json:"cache_h,omitempty"`
	CacheMisses  int64 `json:"cache_m,omitempty"`
	ParCommitted int64 `json:"par_c,omitempty"`
	ParWasted    int64 `json:"par_w,omitempty"`
}

// EncodeLine renders r as one JSONL line (newline included).
func EncodeLine(r *Record) ([]byte, error) {
	r.V = LogVersion
	b, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("load: encoding record %d: %w", r.Seq, err)
	}
	return append(b, '\n'), nil
}

// DecodeLine parses one session-log line, rejecting version skew and
// structurally broken records.
func DecodeLine(line []byte) (*Record, error) {
	line = bytes.TrimSpace(line)
	if len(line) == 0 {
		return nil, fmt.Errorf("load: empty session-log line")
	}
	var r Record
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("load: bad session-log line: %w", err)
	}
	// Reject trailing garbage after the JSON object ("{...}{...}").
	if dec.More() {
		return nil, fmt.Errorf("load: trailing data after session-log record")
	}
	if r.V != LogVersion {
		return nil, fmt.Errorf("load: session-log version %d, this build reads %d", r.V, LogVersion)
	}
	if r.RID == "" {
		return nil, fmt.Errorf("load: record %d has no rid", r.Seq)
	}
	if r.Seq < 0 {
		return nil, fmt.Errorf("load: negative seq %d", r.Seq)
	}
	switch r.Op {
	case OpExplain, OpRecommend, OpDiagnose:
	default:
		return nil, fmt.Errorf("load: record %d has unknown op %q", r.Seq, r.Op)
	}
	return &r, nil
}

// WriteLog writes records as JSONL.
func WriteLog(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	for i := range recs {
		line, err := EncodeLine(&recs[i])
		if err != nil {
			return err
		}
		if _, err := bw.Write(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadLog parses a JSONL session log, skipping blank lines. Any
// malformed or version-skewed record fails the whole read with its
// line number — a session log is a replay input, not a best-effort
// diagnostic, so partial reads would silently change the workload.
func ReadLog(r io.Reader) ([]Record, error) {
	var recs []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		rec, err := DecodeLine(sc.Bytes())
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		recs = append(recs, *rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("load: reading session log: %w", err)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("load: session log has no records")
	}
	return recs, nil
}

// Requests extracts the replayable request stream from a session log,
// in recorded order.
func Requests(recs []Record) []Request {
	reqs := make([]Request, len(recs))
	for i := range recs {
		reqs[i] = recs[i].Request
	}
	return reqs
}
