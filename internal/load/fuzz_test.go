package load

import (
	"bytes"
	"testing"
)

// FuzzDecodeLine hardens the session-log decoder: session logs are
// replay inputs that may come from older builds, other machines, or
// truncated files, so DecodeLine must never panic and must only accept
// records that re-encode losslessly.
func FuzzDecodeLine(f *testing.F) {
	valid, err := EncodeLine(&Record{
		Request: Request{Seq: 3, RID: "lg000003-deadbeef", Op: OpExplain,
			User: "Paul", WNI: "C", Mode: "remove", Method: "powerset", OffsetUS: 1200},
		StartUS: 1300, Status: 200, LatencyUS: 4500, Attempts: 2,
		Degraded: true, DegradedLevel: "lean", CacheHits: 1,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte(`{"v":1,"seq":0,"rid":"r","op":"recommend","user":"u","offset_us":0,"n":10,"start_us":0,"status":503,"latency_us":9,"err":"saturated"}`))
	f.Add([]byte(`{"v":2,"seq":0,"rid":"r","op":"explain","user":"u","offset_us":0,"start_us":0,"status":200,"latency_us":1}`))
	f.Add([]byte(`{"v":1}`))
	f.Add([]byte(`{not json`))
	f.Add([]byte(``))
	f.Add([]byte(`{"v":1,"seq":0,"rid":"r","op":"explain","user":"u","offset_us":0,"start_us":0,"status":200,"latency_us":1}{"v":1}`))

	f.Fuzz(func(t *testing.T, line []byte) {
		rec, err := DecodeLine(line)
		if err != nil {
			return
		}
		// Accepted records must survive an encode/decode round trip
		// unchanged — otherwise a replay would diverge from the capture.
		enc, err := EncodeLine(rec)
		if err != nil {
			t.Fatalf("accepted record failed to encode: %v", err)
		}
		rec2, err := DecodeLine(enc)
		if err != nil {
			t.Fatalf("re-encoded record failed to decode: %v\nline: %s", err, enc)
		}
		enc2, err := EncodeLine(rec2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("round trip unstable:\n%s\n%s", enc, enc2)
		}
	})
}
