package load

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"

	"github.com/why-not-xai/emigre/client"
)

// DefaultMaxInflight bounds concurrent open-loop dispatches so a
// stalled server cannot make the generator hold thousands of sockets.
const DefaultMaxInflight = 64

// RunConfig drives one capture or replay run.
type RunConfig struct {
	// Client issues the requests (its backoff/Retry-After/deadline
	// machinery applies per call).
	Client *client.Client
	// Requests is the stream to issue, in order.
	Requests []Request
	// Closed switches to closed-loop dispatch: Concurrency workers each
	// issue their next request when the previous one finishes, ignoring
	// OffsetUS. Open-loop (default) dispatches each request at its
	// scheduled offset.
	Closed bool
	// Concurrency is the worker count (closed loop) or the in-flight
	// cap (open loop). 0 means 1 worker / DefaultMaxInflight.
	Concurrency int
	// Speed scales open-loop timing: 1 replays at recorded rate, 2 at
	// double rate, 0 dispatches with no pacing at all.
	Speed float64
}

// Run issues every request and returns one Record per request, ordered
// by Seq. The error is only for setup problems or context cancellation;
// per-request failures are recorded, not returned.
func Run(ctx context.Context, rc RunConfig) ([]Record, error) {
	if rc.Client == nil {
		return nil, errors.New("load: RunConfig.Client is required")
	}
	if len(rc.Requests) == 0 {
		return nil, errors.New("load: no requests to run")
	}
	records := make([]Record, len(rc.Requests))
	start := time.Now()
	if rc.Closed {
		if err := runClosed(ctx, rc, start, records); err != nil {
			return nil, err
		}
	} else if err := runOpen(ctx, rc, start, records); err != nil {
		return nil, err
	}
	sort.Slice(records, func(i, j int) bool { return records[i].Seq < records[j].Seq })
	return records, nil
}

// runClosed pulls requests through a fixed worker pool in stream order.
func runClosed(ctx context.Context, rc RunConfig, start time.Time, records []Record) error {
	workers := rc.Concurrency
	if workers <= 0 {
		workers = 1
	}
	feed := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range feed {
				records[i] = issue(ctx, rc.Client, rc.Requests[i], start)
			}
		}()
	}
	var err error
feeding:
	for i := range rc.Requests {
		select {
		case feed <- i:
		case <-ctx.Done():
			err = ctx.Err()
			break feeding
		}
	}
	close(feed)
	wg.Wait()
	return err
}

// runOpen dispatches each request at its scheduled offset (scaled by
// Speed), bounded by an in-flight semaphore.
func runOpen(ctx context.Context, rc RunConfig, start time.Time, records []Record) error {
	inflight := rc.Concurrency
	if inflight <= 0 {
		inflight = DefaultMaxInflight
	}
	sem := make(chan struct{}, inflight)
	var wg sync.WaitGroup
	var err error
	for i := range rc.Requests {
		if rc.Speed > 0 {
			due := start.Add(time.Duration(float64(rc.Requests[i].OffsetUS)/rc.Speed) * time.Microsecond)
			if wait := time.Until(due); wait > 0 {
				t := time.NewTimer(wait)
				select {
				case <-t.C:
				case <-ctx.Done():
					t.Stop()
					err = ctx.Err()
				}
			}
		}
		if err == nil && ctx.Err() != nil {
			err = ctx.Err()
		}
		if err != nil {
			// Mark the rest of the stream as never-dispatched.
			for j := i; j < len(rc.Requests); j++ {
				records[j] = Record{V: LogVersion, Request: rc.Requests[j], Err: "not dispatched: " + err.Error()}
			}
			break
		}
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			err = ctx.Err()
			for j := i; j < len(rc.Requests); j++ {
				records[j] = Record{V: LogVersion, Request: rc.Requests[j], Err: "not dispatched: " + err.Error()}
			}
		}
		if err != nil {
			break
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			records[i] = issue(ctx, rc.Client, rc.Requests[i], start)
		}(i)
	}
	wg.Wait()
	if err != nil {
		return err
	}
	return nil
}

// issue sends one request through the client and folds the outcome
// into a Record.
func issue(ctx context.Context, cl *client.Client, req Request, start time.Time) Record {
	rec := Record{V: LogVersion, Request: req}
	rec.StartUS = time.Since(start).Microseconds()
	cctx := client.WithRequestID(ctx, req.RID)
	began := time.Now()
	var meta client.Meta
	var err error
	switch req.Op {
	case OpRecommend:
		var resp *client.RecommendResponse
		resp, err = cl.Recommend(cctx, req.User, req.N)
		if resp != nil {
			meta = resp.Meta
		}
	case OpDiagnose:
		var resp *client.DiagnoseResponse
		resp, err = cl.Diagnose(cctx, client.DiagnoseRequest{
			User: req.User, WNI: req.WNI, Mode: req.Mode, TimeoutMS: req.TimeoutMS,
		})
		if resp != nil {
			meta = resp.Meta
		}
	default: // OpExplain
		var resp *client.ExplainResponse
		resp, err = cl.Explain(cctx, client.ExplainRequest{
			User: req.User, WNI: req.WNI, Mode: req.Mode, Method: req.Method,
			TimeoutMS: req.TimeoutMS,
		})
		if resp != nil {
			meta = resp.Meta
			rec.Degraded = resp.Degraded
			rec.DegradedLevel = resp.DegradedLevel
		}
	}
	rec.LatencyUS = time.Since(began).Microseconds()
	rec.Attempts = meta.Attempts
	rec.CacheHits, rec.CacheMisses = meta.CacheHits, meta.CacheMisses
	rec.ParCommitted, rec.ParWasted = meta.ParCommitted, meta.ParWasted
	if err == nil {
		rec.Status = 200
		return rec
	}
	rec.Err = err.Error()
	var apiErr *client.APIError
	if errors.As(err, &apiErr) {
		rec.Status = apiErr.Status
	}
	return rec
}
