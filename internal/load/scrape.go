package load

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"github.com/why-not-xai/emigre/internal/obs"
)

// Scrape fetches and parses a Prometheus text exposition from url
// (the server's GET /metrics). The parse is strict — a scrape that
// fails obs.ParseExposition is a bug worth failing a load test over.
func Scrape(ctx context.Context, url string) (*obs.Exposition, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, fmt.Errorf("load: building scrape request: %w", err)
	}
	httpc := &http.Client{Timeout: 10 * time.Second}
	resp, err := httpc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("load: scraping %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("load: scraping %s: status %d", url, resp.StatusCode)
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return nil, fmt.Errorf("load: reading scrape body: %w", err)
	}
	e, err := obs.ParseExposition(raw)
	if err != nil {
		return nil, fmt.Errorf("load: parsing %s exposition: %w", url, err)
	}
	return e, nil
}
