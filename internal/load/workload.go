// Package load is the traffic capture/replay substrate behind
// cmd/emigre-loadgen: a seeded workload model that synthesizes
// million-user-shaped request streams (Zipfian user and Why-Not-item
// popularity, weighted op/mode/method mixes, Poisson or closed-loop
// arrivals), a versioned JSONL session log of request/response pairs
// recorded during live runs and replayable at recorded or scaled rate
// through the public client package, and a reporter that folds
// per-request observations together with before/after /metrics scrapes
// into a latency/SLO report.
//
// Everything downstream of the seed is deterministic: the same seed and
// config produce a byte-identical request stream, and a replayed
// session re-sends the recorded logical request IDs so server-side
// captures line up across runs.
package load

import (
	"fmt"
	"math/rand"
	"sort"
)

// Ops the workload model can synthesize (the client calls they map to).
const (
	OpExplain   = "explain"
	OpRecommend = "recommend"
	OpDiagnose  = "diagnose"
)

// Arrival processes.
const (
	// ArrivalPoisson spaces requests with exponential inter-arrival
	// gaps at Config.Rate requests/second (an open-loop model: arrivals
	// do not wait for responses, like independent users).
	ArrivalPoisson = "poisson"
	// ArrivalClosed issues requests from a fixed worker pool, each
	// sending its next request as soon as the previous answer returns
	// (a closed-loop model: offered load adapts to server speed).
	ArrivalClosed = "closed"
)

// Config parameterizes one synthesized workload.
type Config struct {
	// Seed drives every random draw. Same seed + same config =
	// byte-identical request stream.
	Seed int64
	// Count is the number of requests to generate.
	Count int
	// Users and Items are the candidate user and Why-Not-item labels.
	// Popularity over each is Zipfian (most traffic concentrates on the
	// first entries) under the corresponding skew.
	Users []string
	Items []string
	// UserSkew and ItemSkew are Zipf s parameters: 0 draws uniformly,
	// values > 1 concentrate mass on early entries (higher = heavier
	// head). Values in (0, 1] are invalid (math/rand's Zipf needs s>1).
	UserSkew float64
	ItemSkew float64
	// OpMix, ModeMix and MethodMix weight the op / explanation mode /
	// search method draws. Empty maps mean all-explain, all-remove,
	// all-powerset. Weights need not sum to 1.
	OpMix     map[string]float64
	ModeMix   map[string]float64
	MethodMix map[string]float64
	// Arrival is ArrivalPoisson (default) or ArrivalClosed.
	Arrival string
	// Rate is the Poisson arrival rate in requests/second. Ignored for
	// closed-loop workloads.
	Rate float64
	// RecommendN is the top-N size recommend requests ask for (default
	// 10).
	RecommendN int
	// TimeoutMS is the per-request server budget stamped on explain and
	// diagnose requests (0 = server default).
	TimeoutMS int
}

// Request is one synthesized (or captured) request: everything needed
// to issue it through the client package, plus its logical identity.
type Request struct {
	// Seq is the request's position in the stream, 0-based.
	Seq int `json:"seq"`
	// RID is the logical request ID sent as X-Emigre-Request-Id (stable
	// across the retries of one call, and across capture and replay).
	RID string `json:"rid"`
	// OffsetUS is the scheduled arrival offset from stream start in
	// microseconds (0 for closed-loop workloads).
	OffsetUS int64 `json:"offset_us"`
	// Op is OpExplain, OpRecommend or OpDiagnose.
	Op string `json:"op"`
	// User is the requesting user's label.
	User string `json:"user"`
	// WNI is the Why-Not item label (explain and diagnose).
	WNI string `json:"wni,omitempty"`
	// Mode and Method parameterize explain requests.
	Mode   string `json:"mode,omitempty"`
	Method string `json:"method,omitempty"`
	// N is the recommend top-N size.
	N int `json:"n,omitempty"`
	// TimeoutMS is the per-request server budget (explain/diagnose).
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// sampler draws indices over a population, Zipf-skewed or uniform.
type sampler struct {
	rng  *rand.Rand
	zipf *rand.Zipf
	n    int
}

func newSampler(rng *rand.Rand, n int, skew float64) (*sampler, error) {
	s := &sampler{rng: rng, n: n}
	//lint:allow floateq skew 0 is the exact uniform-sampling sentinel
	if skew == 0 || n == 1 {
		return s, nil
	}
	if skew <= 1 {
		return nil, fmt.Errorf("load: skew must be 0 (uniform) or > 1 (Zipf), got %g", skew)
	}
	s.zipf = rand.NewZipf(rng, skew, 1, uint64(n-1))
	return s, nil
}

func (s *sampler) draw() int {
	if s.zipf != nil {
		return int(s.zipf.Uint64())
	}
	return s.rng.Intn(s.n)
}

// mixer draws keys of a weight map with stable (sorted-key) order, so
// the stream is identical across runs regardless of map iteration.
type mixer struct {
	keys    []string
	cumsum  []float64
	total   float64
	rng     *rand.Rand
	onlyKey string
}

func newMixer(rng *rand.Rand, mix map[string]float64, def string, valid []string) (*mixer, error) {
	if len(mix) == 0 {
		return &mixer{onlyKey: def}, nil
	}
	allowed := map[string]bool{}
	for _, v := range valid {
		allowed[v] = true
	}
	m := &mixer{rng: rng}
	keys := make([]string, 0, len(mix))
	for k := range mix {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		w := mix[k]
		if !allowed[k] {
			return nil, fmt.Errorf("load: unknown mix key %q (want one of %v)", k, valid)
		}
		if w < 0 {
			return nil, fmt.Errorf("load: negative weight for %q", k)
		}
		//lint:allow floateq exact-zero weight means "drop this key"
		if w == 0 {
			continue
		}
		m.total += w
		m.keys = append(m.keys, k)
		m.cumsum = append(m.cumsum, m.total)
	}
	//lint:allow floateq exact-zero total: every weight was zero
	if m.total == 0 {
		return nil, fmt.Errorf("load: mix has no positive weights")
	}
	if len(m.keys) == 1 {
		return &mixer{onlyKey: m.keys[0]}, nil
	}
	return m, nil
}

func (m *mixer) draw() string {
	if m.onlyKey != "" {
		return m.onlyKey
	}
	x := m.rng.Float64() * m.total
	i := sort.SearchFloat64s(m.cumsum, x)
	if i >= len(m.keys) {
		i = len(m.keys) - 1
	}
	return m.keys[i]
}

var (
	validOps     = []string{OpExplain, OpRecommend, OpDiagnose}
	validModes   = []string{"remove", "add", "combined", "reweight"}
	validMethods = []string{"incremental", "powerset", "exhaustive", "exhaustive-direct", "brute-force"}
)

// Generate synthesizes the request stream for cfg. The stream is a pure
// function of cfg: every draw comes from one seeded source consumed in
// a fixed order.
func Generate(cfg Config) ([]Request, error) {
	if cfg.Count <= 0 {
		return nil, fmt.Errorf("load: Count must be positive")
	}
	if len(cfg.Users) == 0 || len(cfg.Items) == 0 {
		return nil, fmt.Errorf("load: Users and Items populations are required")
	}
	arrival := cfg.Arrival
	if arrival == "" {
		arrival = ArrivalPoisson
	}
	if arrival != ArrivalPoisson && arrival != ArrivalClosed {
		return nil, fmt.Errorf("load: unknown arrival process %q", arrival)
	}
	if arrival == ArrivalPoisson && cfg.Rate <= 0 {
		return nil, fmt.Errorf("load: Poisson arrivals need a positive Rate")
	}
	recommendN := cfg.RecommendN
	if recommendN <= 0 {
		recommendN = 10
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	users, err := newSampler(rng, len(cfg.Users), cfg.UserSkew)
	if err != nil {
		return nil, fmt.Errorf("load: user sampler: %w", err)
	}
	items, err := newSampler(rng, len(cfg.Items), cfg.ItemSkew)
	if err != nil {
		return nil, fmt.Errorf("load: item sampler: %w", err)
	}
	ops, err := newMixer(rng, cfg.OpMix, OpExplain, validOps)
	if err != nil {
		return nil, err
	}
	modes, err := newMixer(rng, cfg.ModeMix, "remove", validModes)
	if err != nil {
		return nil, err
	}
	methods, err := newMixer(rng, cfg.MethodMix, "powerset", validMethods)
	if err != nil {
		return nil, err
	}

	reqs := make([]Request, cfg.Count)
	var clock float64 // seconds
	for i := range reqs {
		if arrival == ArrivalPoisson {
			clock += rng.ExpFloat64() / cfg.Rate
		}
		r := Request{
			Seq:      i,
			RID:      fmt.Sprintf("lg%06d-%08x", i, rng.Uint32()),
			OffsetUS: int64(clock * 1e6),
			Op:       ops.draw(),
			User:     cfg.Users[users.draw()],
		}
		switch r.Op {
		case OpExplain:
			r.WNI = cfg.Items[items.draw()]
			r.Mode = modes.draw()
			r.Method = methods.draw()
			r.TimeoutMS = cfg.TimeoutMS
		case OpDiagnose:
			r.WNI = cfg.Items[items.draw()]
			r.Mode = modes.draw()
			r.TimeoutMS = cfg.TimeoutMS
		case OpRecommend:
			r.N = recommendN
		}
		reqs[i] = r
	}
	return reqs, nil
}
