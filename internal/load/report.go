package load

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"github.com/why-not-xai/emigre/internal/load/benchfmt"
	"github.com/why-not-xai/emigre/internal/obs"
)

// ReportSchema versions the JSON report document.
const ReportSchema = "emigre/loadreport/v1"

// minMeasurableS is the smallest wall-clock window a rate can be
// computed from: latencies are recorded in whole microseconds, so a
// window under a millisecond holds no meaningful throughput signal —
// dividing by it manufactures absurd QPS from scheduler noise.
const minMeasurableS = 1e-3

// sanitizeDurationS maps a non-finite, negative, or sub-measurable
// wall-clock window to exactly 0, so every rate derived from it is an
// exact 0 instead of +Inf/NaN (which json.Marshal rejects outright) or
// a nonsense rate from dividing by nanoseconds. Replaying an empty or
// instant session hits this path.
func sanitizeDurationS(d float64) float64 {
	if math.IsNaN(d) || math.IsInf(d, 0) || d < minMeasurableS {
		return 0
	}
	return d
}

// Percentiles summarizes a latency distribution in microseconds. Exact
// (not estimated): computed from the full per-request sample set.
type Percentiles struct {
	P50  int64 `json:"p50_us"`
	P95  int64 `json:"p95_us"`
	P99  int64 `json:"p99_us"`
	Max  int64 `json:"max_us"`
	Mean int64 `json:"mean_us"`
}

// EndpointReport is the per-op slice of a load report.
type EndpointReport struct {
	Count  int `json:"count"`
	Errors int `json:"errors"`
	// Status counts outcomes by HTTP status ("0" = no response).
	Status  map[string]int `json:"status"`
	Rate503 float64        `json:"rate_503"`
	Latency Percentiles    `json:"latency"`
	// Degraded histograms responses by ladder level ("" = full
	// fidelity responses are not counted here).
	Degraded map[string]int `json:"degraded,omitempty"`
	// Attempts sums client HTTP attempts (retries included).
	Attempts int64 `json:"attempts"`
	// Cache and pipeline tallies summed over the slice.
	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"`
	ParCommitted int64 `json:"par_committed"`
	ParWasted    int64 `json:"par_wasted"`
}

// Report is one run's latency/SLO summary.
type Report struct {
	Schema    string  `json:"schema"`
	DurationS float64 `json:"duration_s"`
	Requests  int     `json:"requests"`
	QPS       float64 `json:"qps"`
	ErrorRate float64 `json:"error_rate"`
	Rate503   float64 `json:"rate_503"`
	// Endpoints slices the run per op; Total aggregates all ops.
	Endpoints map[string]*EndpointReport `json:"endpoints"`
	Total     *EndpointReport            `json:"total"`
	// MetricsDelta holds nonzero counter-family deltas between the
	// before and after /metrics scrapes (admission rejections, degraded
	// responses, cache traffic, ...). Nil when scrapes were unavailable.
	MetricsDelta map[string]float64 `json:"metrics_delta,omitempty"`
}

// percentile returns the exact p-quantile of sorted (nearest-rank).
func percentile(sorted []int64, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p*float64(len(sorted)) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

func summarize(recs []*Record) *EndpointReport {
	ep := &EndpointReport{Status: map[string]int{}}
	lat := make([]int64, 0, len(recs))
	var sum int64
	var n503 int
	for _, r := range recs {
		ep.Count++
		ep.Status[strconv.Itoa(r.Status)]++
		if r.Status != 200 {
			ep.Errors++
		}
		if r.Status == 503 {
			n503++
		}
		if r.Degraded {
			if ep.Degraded == nil {
				ep.Degraded = map[string]int{}
			}
			ep.Degraded[r.DegradedLevel]++
		}
		ep.Attempts += int64(r.Attempts)
		ep.CacheHits += r.CacheHits
		ep.CacheMisses += r.CacheMisses
		ep.ParCommitted += r.ParCommitted
		ep.ParWasted += r.ParWasted
		lat = append(lat, r.LatencyUS)
		sum += r.LatencyUS
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	ep.Latency = Percentiles{
		P50: percentile(lat, 0.50),
		P95: percentile(lat, 0.95),
		P99: percentile(lat, 0.99),
	}
	if len(lat) > 0 {
		ep.Latency.Max = lat[len(lat)-1]
		ep.Latency.Mean = sum / int64(len(lat))
	}
	if ep.Count > 0 {
		ep.Rate503 = float64(n503) / float64(ep.Count)
	}
	return ep
}

// BuildReport folds per-request records and optional before/after
// /metrics scrapes into a Report. durationS is the run's wall time.
func BuildReport(recs []Record, before, after *obs.Exposition, durationS float64) *Report {
	durationS = sanitizeDurationS(durationS)
	rep := &Report{
		Schema:    ReportSchema,
		DurationS: durationS,
		Requests:  len(recs),
		Endpoints: map[string]*EndpointReport{},
	}
	byOp := map[string][]*Record{}
	all := make([]*Record, len(recs))
	for i := range recs {
		all[i] = &recs[i]
		byOp[recs[i].Op] = append(byOp[recs[i].Op], &recs[i])
	}
	for op, rs := range byOp {
		rep.Endpoints[op] = summarize(rs)
	}
	rep.Total = summarize(all)
	if durationS > 0 {
		rep.QPS = float64(len(recs)) / durationS
	}
	if rep.Total.Count > 0 {
		rep.ErrorRate = float64(rep.Total.Errors) / float64(rep.Total.Count)
	}
	rep.Rate503 = rep.Total.Rate503
	if after != nil {
		rep.MetricsDelta = obs.CounterDeltas(before, after)
	}
	return rep
}

// ToBenchFmt renders the report in the normalized benchfmt schema, one
// result per endpoint plus a "loadgen/total" aggregate — the shape the
// perf-regression gate diffs.
func (r *Report) ToBenchFmt(description string) *benchfmt.File {
	f := &benchfmt.File{Schema: benchfmt.Schema, Description: description}
	emit := func(name string, ep *EndpointReport) {
		if ep == nil || ep.Count == 0 {
			return
		}
		m := map[string]float64{
			"p50_us":     float64(ep.Latency.P50),
			"p95_us":     float64(ep.Latency.P95),
			"p99_us":     float64(ep.Latency.P99),
			"mean_us":    float64(ep.Latency.Mean),
			"ns/op":      float64(ep.Latency.Mean) * 1e3,
			"error_rate": float64(ep.Errors) / float64(ep.Count),
			"rate_503":   ep.Rate503,
		}
		// qps is always emitted, as an exact 0 when the window was too
		// small to measure: omitting it would make benchfmt.Diff skip
		// the metric and silently wave a broken run through the gate.
		m["qps"] = 0
		if d := sanitizeDurationS(r.DurationS); d > 0 {
			m["qps"] = float64(ep.Count) / d
		}
		f.Results = append(f.Results, benchfmt.Result{
			Name:       name,
			Iterations: int64(ep.Count),
			Metrics:    m,
		})
	}
	ops := make([]string, 0, len(r.Endpoints))
	for op := range r.Endpoints {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		emit("loadgen/"+op, r.Endpoints[op])
	}
	emit("loadgen/total", r.Total)
	return f
}

// Render writes the report as human-readable text.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d requests in %.1fs (%.1f req/s), %.2f%% errors, %.2f%% 503s\n",
		r.Requests, r.DurationS, r.QPS, 100*r.ErrorRate, 100*r.Rate503)
	ops := make([]string, 0, len(r.Endpoints))
	for op := range r.Endpoints {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		ep := r.Endpoints[op]
		fmt.Fprintf(&b, "  %-10s n=%-6d p50=%s p95=%s p99=%s max=%s err=%d",
			op, ep.Count,
			us(ep.Latency.P50), us(ep.Latency.P95), us(ep.Latency.P99), us(ep.Latency.Max),
			ep.Errors)
		if len(ep.Degraded) > 0 {
			levels := make([]string, 0, len(ep.Degraded))
			for l := range ep.Degraded {
				levels = append(levels, l)
			}
			sort.Strings(levels)
			parts := make([]string, len(levels))
			for i, l := range levels {
				parts[i] = fmt.Sprintf("%s:%d", l, ep.Degraded[l])
			}
			fmt.Fprintf(&b, " degraded=[%s]", strings.Join(parts, " "))
		}
		b.WriteByte('\n')
	}
	if len(r.MetricsDelta) > 0 {
		names := make([]string, 0, len(r.MetricsDelta))
		for n := range r.MetricsDelta {
			names = append(names, n)
		}
		sort.Strings(names)
		b.WriteString("  metrics deltas:\n")
		for _, n := range names {
			fmt.Fprintf(&b, "    %-45s %+g\n", n, r.MetricsDelta[n])
		}
	}
	return b.String()
}

// us renders a microsecond count as a human duration.
func us(v int64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2fs", float64(v)/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fms", float64(v)/1e3)
	default:
		return fmt.Sprintf("%dus", v)
	}
}
