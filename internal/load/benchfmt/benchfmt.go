// Package benchfmt defines the repo's normalized benchmark-result
// schema and the diff engine behind cmd/emigre-benchdiff.
//
// Three input shapes normalize into one File:
//
//   - the normalized schema itself (Schema == "emigre/benchfmt/v1"),
//   - the legacy BENCH_*.json shape the repo committed before this
//     package existed (results with ns_per_op/bytes_per_op/
//     allocs_per_op fields plus free-form extras), and
//   - `go test -bench` text output.
//
// Values are keyed by the go-bench unit names ("ns/op", "B/op",
// "allocs/op", ...) so a fresh `go test -bench` run diffs directly
// against a committed JSON baseline.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Schema identifies the normalized format. Readers reject files
// claiming a different emigre/benchfmt version so schema skew fails
// loudly instead of mis-diffing.
const Schema = "emigre/benchfmt/v1"

// Result is one benchmark's measurements: metric values keyed by unit
// name ("ns/op", "B/op", "allocs/op", "qps", "p99_us", ...).
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations,omitempty"`
	Metrics    map[string]float64 `json:"metrics"`
}

// File is a normalized set of benchmark results plus provenance.
type File struct {
	Schema      string   `json:"schema"`
	Description string   `json:"description,omitempty"`
	GOOS        string   `json:"goos,omitempty"`
	GOARCH      string   `json:"goarch,omitempty"`
	CPU         string   `json:"cpu,omitempty"`
	Results     []Result `json:"results"`
}

// Result returns the named result, or nil when absent.
func (f *File) Result(name string) *Result {
	for i := range f.Results {
		if f.Results[i].Name == name {
			return &f.Results[i]
		}
	}
	return nil
}

// legacyResult mirrors one entry of the committed BENCH_*.json shape.
// Unknown numeric fields become metrics keyed by their JSON name, so
// per-file extras (e.g. a speedup ratio) survive normalization.
type legacyResult struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

type legacyFile struct {
	Description string         `json:"description"`
	GOOS        string         `json:"goos"`
	GOARCH      string         `json:"goarch"`
	CPU         string         `json:"cpu"`
	Results     []legacyResult `json:"results"`
}

// Read normalizes b into a File. JSON documents are detected by their
// leading '{'; anything else is parsed as `go test -bench` text.
func Read(b []byte) (*File, error) {
	trimmed := strings.TrimSpace(string(b))
	if trimmed == "" {
		return nil, fmt.Errorf("benchfmt: empty input")
	}
	if trimmed[0] != '{' {
		return ParseGoBench(trimmed)
	}
	// Peek at the schema field to pick a decoder.
	var probe struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(b, &probe); err != nil {
		return nil, fmt.Errorf("benchfmt: bad JSON: %w", err)
	}
	if probe.Schema != "" {
		if probe.Schema != Schema {
			return nil, fmt.Errorf("benchfmt: unsupported schema %q (want %q)", probe.Schema, Schema)
		}
		var f File
		if err := json.Unmarshal(b, &f); err != nil {
			return nil, fmt.Errorf("benchfmt: bad %s document: %w", Schema, err)
		}
		if err := f.check(); err != nil {
			return nil, err
		}
		return &f, nil
	}
	return readLegacy(b)
}

func readLegacy(b []byte) (*File, error) {
	var lf legacyFile
	if err := json.Unmarshal(b, &lf); err != nil {
		return nil, fmt.Errorf("benchfmt: bad legacy BENCH document: %w", err)
	}
	if len(lf.Results) == 0 {
		return nil, fmt.Errorf("benchfmt: legacy BENCH document has no results")
	}
	f := &File{
		Schema:      Schema,
		Description: lf.Description,
		GOOS:        lf.GOOS,
		GOARCH:      lf.GOARCH,
		CPU:         lf.CPU,
	}
	for _, r := range lf.Results {
		f.Results = append(f.Results, Result{
			Name:       r.Name,
			Iterations: r.Iterations,
			Metrics: map[string]float64{
				"ns/op":     r.NsPerOp,
				"B/op":      r.BytesPerOp,
				"allocs/op": r.AllocsPerOp,
			},
		})
	}
	if err := f.check(); err != nil {
		return nil, err
	}
	return f, nil
}

func (f *File) check() error {
	seen := map[string]bool{}
	for _, r := range f.Results {
		if r.Name == "" {
			return fmt.Errorf("benchfmt: result with empty name")
		}
		if seen[r.Name] {
			return fmt.Errorf("benchfmt: duplicate result %q", r.Name)
		}
		seen[r.Name] = true
		if len(r.Metrics) == 0 {
			return fmt.Errorf("benchfmt: result %q has no metrics", r.Name)
		}
	}
	return nil
}

// ParseGoBench parses `go test -bench` text output. Lines look like
//
//	BenchmarkName/sub-8   100   123.4 ns/op   56 B/op   7 allocs/op
//
// The trailing -N GOMAXPROCS suffix is stripped from names so runs on
// machines with different core counts diff against each other.
// Non-benchmark lines (PASS, ok, goos: ...) are ignored.
func ParseGoBench(text string) (*File, error) {
	f := &File{Schema: Schema}
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			switch {
			case strings.HasPrefix(line, "goos: "):
				f.GOOS = strings.TrimPrefix(line, "goos: ")
			case strings.HasPrefix(line, "goarch: "):
				f.GOARCH = strings.TrimPrefix(line, "goarch: ")
			case strings.HasPrefix(line, "cpu: "):
				f.CPU = strings.TrimPrefix(line, "cpu: ")
			}
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // header or malformed; not a result line
		}
		r := Result{
			Name:       stripProcs(fields[0]),
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		// The remainder is (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchfmt: %s: bad value %q", r.Name, fields[i])
			}
			r.Metrics[fields[i+1]] = v
		}
		if len(r.Metrics) == 0 {
			return nil, fmt.Errorf("benchfmt: %s: no measurements", r.Name)
		}
		f.Results = append(f.Results, r)
	}
	if len(f.Results) == 0 {
		return nil, fmt.Errorf("benchfmt: no benchmark result lines found")
	}
	if err := f.check(); err != nil {
		return nil, err
	}
	return f, nil
}

// stripProcs removes the -N GOMAXPROCS suffix go appends to benchmark
// names ("BenchmarkFoo/bar-8" -> "BenchmarkFoo/bar").
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// Marshal renders f as indented JSON with sorted metric keys (Go maps
// already marshal with sorted keys) and a trailing newline, the form
// committed BENCH baselines use.
func Marshal(f *File) ([]byte, error) {
	f.Schema = Schema
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// MetricNames returns every metric name appearing in any result, sorted.
func (f *File) MetricNames() []string {
	set := map[string]bool{}
	for _, r := range f.Results {
		for m := range r.Metrics {
			set[m] = true
		}
	}
	names := make([]string, 0, len(set))
	for m := range set {
		names = append(names, m)
	}
	sort.Strings(names)
	return names
}
