package benchfmt

import (
	"fmt"
	"sort"
	"strings"
)

// Tolerances bounds how much a metric may move before Diff calls it a
// regression. Bounds are relative: 0.25 allows a 25% move in the bad
// direction. Improvements never fail a diff.
type Tolerances struct {
	// Default applies to any metric without a per-metric entry.
	Default float64
	// PerMetric overrides Default for specific metric names — e.g. wide
	// bounds for ns/op (machine-speed dependent) but tight bounds for
	// allocs/op (deterministic given the same code).
	PerMetric map[string]float64
	// Strict turns results present in the baseline but missing from the
	// current run into regressions instead of warnings.
	Strict bool
}

// bound returns the tolerance for metric.
func (t Tolerances) bound(metric string) float64 {
	if v, ok := t.PerMetric[metric]; ok {
		return v
	}
	return t.Default
}

// higherBetter reports whether larger values of the metric are an
// improvement. Latency-ish units (the go-bench defaults and the
// loadgen *_us percentiles) default to lower-is-better.
func higherBetter(metric string) bool {
	switch metric {
	case "qps", "throughput", "ops/s", "hits":
		return true
	}
	return false
}

// Delta is one metric's movement between baseline and current.
type Delta struct {
	Result   string
	Metric   string
	Baseline float64
	Current  float64
	// Rel is the relative change in the "bad" direction: positive means
	// worse (slower, bigger, more errors), negative means better.
	Rel float64
	// Bound is the tolerance the delta was judged against.
	Bound float64
	// Regression is true when Rel exceeds Bound.
	Regression bool
}

func (d Delta) String() string {
	verdict := "ok"
	if d.Regression {
		verdict = "REGRESSION"
	}
	return fmt.Sprintf("%s %s: %g -> %g (%+.1f%%, bound %.0f%%) %s",
		d.Result, d.Metric, d.Baseline, d.Current, 100*d.Rel, 100*d.Bound, verdict)
}

// Report is the outcome of diffing a current run against a baseline.
type Report struct {
	Deltas []Delta
	// Missing lists baseline results absent from the current run;
	// Added lists current results absent from the baseline. Both are
	// informational unless Tolerances.Strict.
	Missing []string
	Added   []string
	// Regressions counts deltas beyond bounds (plus Missing when
	// strict).
	Regressions int
}

// OK reports whether the diff passed.
func (r *Report) OK() bool { return r.Regressions == 0 }

// Render writes the report as human-readable text, regressions first.
func (r *Report) Render() string {
	var b strings.Builder
	for _, d := range r.Deltas {
		if d.Regression {
			fmt.Fprintf(&b, "FAIL %s\n", d)
		}
	}
	for _, d := range r.Deltas {
		if !d.Regression {
			fmt.Fprintf(&b, "  ok %s\n", d)
		}
	}
	for _, name := range r.Missing {
		fmt.Fprintf(&b, "miss %s: in baseline but not in current run\n", name)
	}
	for _, name := range r.Added {
		fmt.Fprintf(&b, " new %s: in current run but not in baseline\n", name)
	}
	fmt.Fprintf(&b, "%d regression(s) across %d compared metric(s)\n", r.Regressions, len(r.Deltas))
	return b.String()
}

// Diff compares current against baseline. Only (result, metric) pairs
// present on both sides produce deltas; a baseline metric value of 0
// with a nonzero current value counts as a regression for
// lower-is-better metrics (any growth from zero is unbounded
// relatively), and is skipped for higher-is-better ones.
func Diff(baseline, current *File, tol Tolerances) *Report {
	rep := &Report{}
	curNames := map[string]bool{}
	for _, r := range current.Results {
		curNames[r.Name] = true
	}
	for _, base := range baseline.Results {
		cur := current.Result(base.Name)
		if cur == nil {
			rep.Missing = append(rep.Missing, base.Name)
			continue
		}
		metrics := make([]string, 0, len(base.Metrics))
		for m := range base.Metrics {
			if _, ok := cur.Metrics[m]; ok {
				metrics = append(metrics, m)
			}
		}
		sort.Strings(metrics)
		for _, m := range metrics {
			d := delta(base.Name, m, base.Metrics[m], cur.Metrics[m], tol)
			if d == nil {
				continue
			}
			if d.Regression {
				rep.Regressions++
			}
			rep.Deltas = append(rep.Deltas, *d)
		}
		curNames[base.Name] = false
	}
	for _, r := range current.Results {
		if curNames[r.Name] {
			rep.Added = append(rep.Added, r.Name)
		}
	}
	sort.Strings(rep.Missing)
	sort.Strings(rep.Added)
	if tol.Strict {
		rep.Regressions += len(rep.Missing)
	}
	// Regressions first, then by (result, metric), for stable output.
	sort.SliceStable(rep.Deltas, func(i, j int) bool {
		if rep.Deltas[i].Regression != rep.Deltas[j].Regression {
			return rep.Deltas[i].Regression
		}
		if rep.Deltas[i].Result != rep.Deltas[j].Result {
			return rep.Deltas[i].Result < rep.Deltas[j].Result
		}
		return rep.Deltas[i].Metric < rep.Deltas[j].Metric
	})
	return rep
}

func delta(result, metric string, base, cur float64, tol Tolerances) *Delta {
	d := &Delta{Result: result, Metric: metric, Baseline: base, Current: cur, Bound: tol.bound(metric)}
	//lint:allow floateq exact-zero baseline sentinel, not a tolerance comparison
	if base == 0 {
		//lint:allow floateq exact-zero current-value sentinel
		if cur == 0 {
			d.Rel = 0
		} else if higherBetter(metric) {
			return nil // growth from zero in the good direction: unjudgeable, skip
		} else {
			d.Rel = 1e9 // any growth from a zero baseline is unbounded relatively
			d.Regression = d.Rel > d.Bound
		}
		return d
	}
	rel := (cur - base) / base
	if higherBetter(metric) {
		rel = -rel
	}
	d.Rel = rel
	d.Regression = rel > d.Bound
	return d
}
