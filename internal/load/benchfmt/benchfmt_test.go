package benchfmt

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestNormalizeCommittedBaselines reads every committed BENCH_*.json at
// the repo root through Read — the legacy shapes must all normalize.
func TestNormalizeCommittedBaselines(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "..", "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 4 {
		t.Fatalf("expected >=4 committed BENCH files, found %d: %v", len(paths), paths)
	}
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		f, err := Read(b)
		if err != nil {
			t.Errorf("Read(%s): %v", filepath.Base(p), err)
			continue
		}
		if f.Schema != Schema {
			t.Errorf("%s: schema %q", p, f.Schema)
		}
		if len(f.Results) == 0 {
			t.Errorf("%s: no results", p)
		}
		for _, r := range f.Results {
			// Iteration-less results are pure derived ratios (e.g.
			// BENCH_router.json's router/speedup) — there is no per-op
			// time to carry. Everything measured per-iteration must
			// normalize with ns/op.
			if r.Iterations == 0 {
				continue
			}
			if _, ok := r.Metrics["ns/op"]; !ok {
				t.Errorf("%s: result %s missing ns/op", filepath.Base(p), r.Name)
			}
		}
	}
}

func TestReadNormalizedRoundTrip(t *testing.T) {
	f := &File{
		Description: "test",
		GOOS:        "linux",
		Results: []Result{
			{Name: "loadgen/explain", Iterations: 100,
				Metrics: map[string]float64{"p99_us": 1500, "qps": 200.5}},
		},
	}
	b, err := Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Read(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Description != "test" || got.GOOS != "linux" {
		t.Errorf("provenance lost: %+v", got)
	}
	r := got.Result("loadgen/explain")
	if r == nil || r.Metrics["p99_us"] != 1500 || r.Metrics["qps"] != 200.5 {
		t.Errorf("metrics lost: %+v", r)
	}
}

func TestReadRejects(t *testing.T) {
	cases := []string{
		"",
		"{}",
		`{"schema":"emigre/benchfmt/v99","results":[]}`,
		`{"schema":"emigre/benchfmt/v1","results":[{"name":"a","metrics":{}}]}`,
		`{"schema":"emigre/benchfmt/v1","results":[{"name":"a","metrics":{"x":1}},{"name":"a","metrics":{"x":2}}]}`,
		"PASS\nok github.com/x 1.2s\n",
	}
	for _, in := range cases {
		if _, err := Read([]byte(in)); err == nil {
			t.Errorf("Read(%q): expected error", in)
		}
	}
}

func TestParseGoBench(t *testing.T) {
	text := `goos: linux
goarch: amd64
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkExplain/powerset-8   	     100	  46445021 ns/op	16350286 B/op	  171686 allocs/op
BenchmarkHit-16    	100000000	         0.76 ns/op
PASS
ok  	github.com/why-not-xai/emigre/internal/emigre	9.8s
`
	f, err := ParseGoBench(text)
	if err != nil {
		t.Fatal(err)
	}
	if f.GOOS != "linux" || f.GOARCH != "amd64" || !strings.Contains(f.CPU, "Xeon") {
		t.Errorf("provenance: %+v", f)
	}
	r := f.Result("BenchmarkExplain/powerset")
	if r == nil {
		t.Fatalf("GOMAXPROCS suffix not stripped: %v", f.Results)
	}
	if r.Iterations != 100 || r.Metrics["ns/op"] != 46445021 ||
		r.Metrics["B/op"] != 16350286 || r.Metrics["allocs/op"] != 171686 {
		t.Errorf("wrong parse: %+v", r)
	}
	if h := f.Result("BenchmarkHit"); h == nil || h.Metrics["ns/op"] != 0.76 {
		t.Errorf("sub-ns parse: %+v", h)
	}
}

func file(results ...Result) *File { return &File{Schema: Schema, Results: results} }

func res(name string, metrics map[string]float64) Result {
	return Result{Name: name, Metrics: metrics}
}

func TestDiffDirections(t *testing.T) {
	base := file(
		res("a", map[string]float64{"ns/op": 100, "allocs/op": 10, "qps": 50}),
	)
	tol := Tolerances{Default: 0.25}

	// Within bounds both ways.
	cur := file(res("a", map[string]float64{"ns/op": 110, "allocs/op": 10, "qps": 45}))
	if rep := Diff(base, cur, tol); !rep.OK() {
		t.Errorf("within-bounds diff failed:\n%s", rep.Render())
	}

	// ns/op regression (lower is better).
	cur = file(res("a", map[string]float64{"ns/op": 200, "allocs/op": 10, "qps": 50}))
	rep := Diff(base, cur, tol)
	if rep.OK() || rep.Regressions != 1 || rep.Deltas[0].Metric != "ns/op" {
		t.Errorf("ns/op regression not caught:\n%s", rep.Render())
	}

	// qps regression (higher is better): dropping qps must fail, large
	// ns/op improvements must not.
	cur = file(res("a", map[string]float64{"ns/op": 10, "allocs/op": 10, "qps": 20}))
	rep = Diff(base, cur, tol)
	if rep.Regressions != 1 || rep.Deltas[0].Metric != "qps" {
		t.Errorf("qps drop not caught:\n%s", rep.Render())
	}

	// qps gain is an improvement, not a regression.
	cur = file(res("a", map[string]float64{"ns/op": 100, "allocs/op": 10, "qps": 500}))
	if rep := Diff(base, cur, tol); !rep.OK() {
		t.Errorf("qps gain flagged:\n%s", rep.Render())
	}
}

func TestDiffPerMetricTolerance(t *testing.T) {
	base := file(res("a", map[string]float64{"ns/op": 100, "allocs/op": 10}))
	cur := file(res("a", map[string]float64{"ns/op": 300, "allocs/op": 11}))
	tol := Tolerances{
		Default:   0.05,
		PerMetric: map[string]float64{"ns/op": 4.0, "allocs/op": 0.2},
	}
	rep := Diff(base, cur, tol)
	// ns/op tripled but the wide bound absorbs it; allocs within 20%.
	if !rep.OK() {
		t.Errorf("per-metric bounds not applied:\n%s", rep.Render())
	}
	cur = file(res("a", map[string]float64{"ns/op": 100, "allocs/op": 20}))
	rep = Diff(base, cur, tol)
	if rep.Regressions != 1 || rep.Deltas[0].Metric != "allocs/op" {
		t.Errorf("allocs regression not caught:\n%s", rep.Render())
	}
}

func TestDiffMissingAndAdded(t *testing.T) {
	base := file(
		res("gone", map[string]float64{"ns/op": 1}),
		res("kept", map[string]float64{"ns/op": 1}),
	)
	cur := file(
		res("kept", map[string]float64{"ns/op": 1}),
		res("new", map[string]float64{"ns/op": 1}),
	)
	rep := Diff(base, cur, Tolerances{Default: 0.1})
	if !rep.OK() {
		t.Errorf("missing result failed non-strict diff:\n%s", rep.Render())
	}
	if len(rep.Missing) != 1 || rep.Missing[0] != "gone" ||
		len(rep.Added) != 1 || rep.Added[0] != "new" {
		t.Errorf("missing/added wrong: %v / %v", rep.Missing, rep.Added)
	}
	rep = Diff(base, cur, Tolerances{Default: 0.1, Strict: true})
	if rep.OK() || rep.Regressions != 1 {
		t.Errorf("strict mode did not fail on missing result:\n%s", rep.Render())
	}
}

func TestDiffZeroBaseline(t *testing.T) {
	base := file(res("a", map[string]float64{"allocs/op": 0, "qps": 0}))
	cur := file(res("a", map[string]float64{"allocs/op": 5, "qps": 100}))
	rep := Diff(base, cur, Tolerances{Default: 0.5})
	// allocs growth from zero regresses; qps growth from zero is skipped.
	if rep.Regressions != 1 || len(rep.Deltas) != 1 || rep.Deltas[0].Metric != "allocs/op" {
		t.Errorf("zero-baseline handling:\n%s", rep.Render())
	}
}
