// Package client is a resilient Go client for the emigre-server HTTP
// API. It retries transient failures with capped exponential backoff
// and full jitter, honors Retry-After hints from the server's admission
// controller, derives per-attempt timeouts from the caller's overall
// deadline, and surfaces degraded responses (see the server's
// degradation ladder) explicitly rather than hiding them.
//
// The retry policy is idempotency-aware: 429 and 503 are always safe to
// retry (the request was never admitted), while transport errors and
// 5xx responses are retried only for idempotent calls — every built-in
// endpoint is a pure read over the graph, so all of them qualify, but
// the classification is explicit so future mutating endpoints default
// to the safe side.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

const (
	// bodyLimit caps how much of a response body one attempt decodes;
	// real payloads are far smaller, and the cap keeps a misbehaving
	// server from ballooning client memory.
	bodyLimit = 1 << 20
	// drainLimit bounds the pre-Close drain of leftover body bytes that
	// keeps the keep-alive connection reusable. Bodies with more than
	// this left over are abandoned: re-dialing is cheaper than reading
	// them out.
	drainLimit = 256 << 10
)

// Defaults used when the corresponding Config field is zero.
const (
	// DefaultMaxAttempts bounds one logical call: the first attempt plus
	// up to three retries.
	DefaultMaxAttempts = 4
	// DefaultBaseDelay seeds the exponential backoff schedule.
	DefaultBaseDelay = 100 * time.Millisecond
	// DefaultMaxDelay caps a single backoff sleep.
	DefaultMaxDelay = 5 * time.Second
)

// Config wires a Client to a server.
type Config struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTPClient is the transport to use; nil means a dedicated
	// http.Client with no client-level timeout (deadlines come from the
	// per-call context and the per-attempt derivation).
	HTTPClient *http.Client
	// MaxAttempts bounds attempts per call (first try included).
	// 0 means DefaultMaxAttempts; 1 disables retries.
	MaxAttempts int
	// BaseDelay is the first backoff delay; doubles each retry.
	// 0 means DefaultBaseDelay.
	BaseDelay time.Duration
	// MaxDelay caps each backoff delay (before jitter).
	// 0 means DefaultMaxDelay.
	MaxDelay time.Duration
	// PerAttemptTimeout bounds each individual attempt. 0 derives the
	// bound from the context deadline instead: remaining budget divided
	// by attempts left, so early attempts cannot eat the whole budget
	// and the last attempt gets everything that remains.
	PerAttemptTimeout time.Duration
}

// Client calls the emigre-server API. Safe for concurrent use.
type Client struct {
	base    string
	http    *http.Client
	max     int
	baseDel time.Duration
	maxDel  time.Duration
	perTry  time.Duration

	attempts  atomic.Int64
	retries   atomic.Int64
	degraded  atomic.Int64
	retryWait atomic.Int64 // total nanoseconds slept between attempts
}

// New builds a client for the server at cfg.BaseURL.
func New(cfg Config) (*Client, error) {
	base := strings.TrimRight(cfg.BaseURL, "/")
	if base == "" {
		return nil, fmt.Errorf("client: BaseURL is required")
	}
	if _, err := url.Parse(base); err != nil {
		return nil, fmt.Errorf("client: bad BaseURL: %w", err)
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	c := &Client{
		base:    base,
		http:    hc,
		max:     cfg.MaxAttempts,
		baseDel: cfg.BaseDelay,
		maxDel:  cfg.MaxDelay,
		perTry:  cfg.PerAttemptTimeout,
	}
	if c.max <= 0 {
		c.max = DefaultMaxAttempts
	}
	if c.baseDel <= 0 {
		c.baseDel = DefaultBaseDelay
	}
	if c.maxDel <= 0 {
		c.maxDel = DefaultMaxDelay
	}
	return c, nil
}

// Stats is a snapshot of the client's lifetime retry behavior.
type Stats struct {
	// Attempts counts HTTP attempts, first tries included.
	Attempts int64 `json:"attempts"`
	// Retries counts attempts beyond the first of each call.
	Retries int64 `json:"retries"`
	// Degraded counts successful explanations served below full
	// fidelity (response had "degraded": true).
	Degraded int64 `json:"degraded"`
	// RetryWait is the total time spent sleeping between attempts.
	RetryWait time.Duration `json:"retry_wait_ns"`
}

// Stats returns a snapshot of the client's counters.
func (c *Client) Stats() Stats {
	return Stats{
		Attempts:  c.attempts.Load(),
		Retries:   c.retries.Load(),
		Degraded:  c.degraded.Load(),
		RetryWait: time.Duration(c.retryWait.Load()),
	}
}

// APIError is a non-2xx response from the server.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Message is the server's error string (or raw body when not JSON).
	Message string
	// RetryAfter is the server's retry hint, 0 when absent.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("server returned %d: %s", e.Status, e.Message)
}

// Edge is one counterfactual edit of an explanation.
type Edge struct {
	From      int64   `json:"from"`
	To        int64   `json:"to"`
	ToLabel   string  `json:"to_label,omitempty"`
	EdgeType  string  `json:"edge_type"`
	Weight    float64 `json:"weight"`
	Operation string  `json:"operation"`
}

// ExplainRequest is one Why-Not question. Exactly one of WNI, Items or
// Category must be set.
type ExplainRequest struct {
	User      string   `json:"user"`
	WNI       string   `json:"wni,omitempty"`
	Items     []string `json:"items,omitempty"`
	Category  string   `json:"category,omitempty"`
	Mode      string   `json:"mode,omitempty"`
	Method    string   `json:"method,omitempty"`
	TimeoutMS int      `json:"timeout_ms,omitempty"`
}

// ExplainResponse mirrors the server's /explain payload, degraded
// marks included.
type ExplainResponse struct {
	Mode        string `json:"mode"`
	Method      string `json:"method"`
	Edges       []Edge `json:"edges"`
	Description string `json:"description"`
	OldTop      int64  `json:"old_top"`
	NewTop      int64  `json:"new_top"`
	Verified    bool   `json:"verified"`
	Checks      int    `json:"checks"`
	DurationUS  int64  `json:"duration_us"`
	// Degraded is true when the server's degradation ladder served this
	// response below full fidelity; DegradedLevel names the rung and
	// Partial flags an unverified best-effort answer.
	Degraded      bool   `json:"degraded"`
	DegradedLevel string `json:"degraded_level,omitempty"`
	Partial       bool   `json:"partial,omitempty"`
	// Meta carries wire metadata (correlation ID, cache/par tallies,
	// attempt count); it is not part of the JSON payload.
	Meta Meta `json:"-"`
}

// ScoredItem is one entry of a recommendation list.
type ScoredItem struct {
	Node  int64   `json:"node"`
	Label string  `json:"label,omitempty"`
	Score float64 `json:"score"`
}

// RecommendResponse is the /recommend payload. Field order matches the
// server's wire order (alphabetical — it encodes via a map), so a
// decode→re-encode round trip through the router is byte-identical.
type RecommendResponse struct {
	Items []ScoredItem `json:"items"`
	User  int64        `json:"user"`
	// Meta carries wire metadata; not part of the JSON payload.
	Meta Meta `json:"-"`
}

// DiagnoseRequest asks why a Why-Not question is unanswerable.
type DiagnoseRequest struct {
	User      string `json:"user"`
	WNI       string `json:"wni"`
	Mode      string `json:"mode,omitempty"`
	TimeoutMS int    `json:"timeout_ms,omitempty"`
}

// DiagnoseResponse is the /diagnose payload. Field order matches the
// server's wire order (alphabetical — it encodes via a map), so a
// decode→re-encode round trip through the router is byte-identical.
type DiagnoseResponse struct {
	// Actions is the number of past user actions Remove mode can edit.
	Actions     int    `json:"actions"`
	Detail      string `json:"detail"`
	Kind        string `json:"kind"`
	WorkingMode string `json:"working_mode"`
	// Meta carries wire metadata; not part of the JSON payload.
	Meta Meta `json:"-"`
}

// Explain asks one Why-Not question, retrying transient failures.
func (c *Client) Explain(ctx context.Context, req ExplainRequest) (*ExplainResponse, error) {
	var out ExplainResponse
	// Pure read: no server state changes, so retrying is safe even
	// after an ambiguous transport failure.
	if err := c.do(ctx, http.MethodPost, "/explain", nil, req, &out, true, &out.Meta); err != nil {
		return nil, err
	}
	if out.Degraded {
		c.degraded.Add(1)
	}
	return &out, nil
}

// Recommend fetches the user's top-n list.
func (c *Client) Recommend(ctx context.Context, user string, n int) (*RecommendResponse, error) {
	q := url.Values{"user": {user}}
	if n > 0 {
		q.Set("n", fmt.Sprint(n))
	}
	var out RecommendResponse
	if err := c.do(ctx, http.MethodGet, "/recommend", q, nil, &out, true, &out.Meta); err != nil {
		return nil, err
	}
	return &out, nil
}

// Diagnose asks for the §6.4 meta-explanation of an unanswerable
// question.
func (c *Client) Diagnose(ctx context.Context, req DiagnoseRequest) (*DiagnoseResponse, error) {
	var out DiagnoseResponse
	if err := c.do(ctx, http.MethodPost, "/diagnose", nil, req, &out, true, &out.Meta); err != nil {
		return nil, err
	}
	return &out, nil
}

// Ready reports whether the server is ready to take traffic.
func (c *Client) Ready(ctx context.Context) error {
	var out struct {
		Status string `json:"status"`
	}
	return c.do(ctx, http.MethodGet, "/readyz", nil, nil, &out, true, nil)
}

// do runs one logical API call: marshal, attempt, classify, back off,
// repeat. body (when non-nil) is marshalled once and replayed per
// attempt; out (when non-nil) receives the decoded 2xx payload; meta
// (when non-nil) receives the call's correlation ID, attempt count and
// server tally headers. Every attempt of the call carries the same
// X-Emigre-Request-Id so server-side captures can group retries.
func (c *Client) do(ctx context.Context, method, path string, query url.Values, body, out any, idempotent bool, meta *Meta) error {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
	}
	u := c.base + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	rid := requestID(ctx)
	if meta != nil {
		meta.RequestID = rid
	}

	var lastErr error
	for attempt := 0; attempt < c.max; attempt++ {
		if attempt > 0 {
			delay := c.backoff(attempt, lastErr)
			if err := c.sleep(ctx, delay); err != nil {
				return fmt.Errorf("client: giving up after %d attempt(s): %w (last error: %v)",
					attempt, err, lastErr)
			}
			c.retries.Add(1)
		}
		c.attempts.Add(1)
		if meta != nil {
			meta.Attempts = attempt + 1
		}

		err := c.attempt(ctx, method, u, rid, payload, out, meta, attempt)
		if err == nil {
			return nil
		}
		lastErr = err
		if !c.retryable(err, idempotent) {
			return err
		}
	}
	return fmt.Errorf("client: giving up after %d attempt(s): %w", c.max, lastErr)
}

// attempt runs one HTTP round trip under the derived per-attempt
// deadline and maps non-2xx statuses to *APIError.
func (c *Client) attempt(ctx context.Context, method, u, rid string, payload []byte, out any, meta *Meta, attempt int) error {
	actx, cancel := c.attemptContext(ctx, attempt)
	defer cancel()
	var rd io.Reader
	if payload != nil {
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(actx, method, u, rd)
	if err != nil {
		return fmt.Errorf("client: building request: %w", err)
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set(RequestIDHeader, rid)
	req.Header.Set(AttemptHeader, strconv.Itoa(attempt+1))
	resp, err := c.http.Do(req)
	if err != nil {
		// Prefer the caller's context error over the derived attempt
		// deadline so "overall budget exhausted" is not misreported as a
		// transient transport failure.
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return &transportError{err: err}
	}
	// Drain whatever the read below left behind (bounded) before Close:
	// a body closed with unread bytes forfeits the keep-alive
	// connection, so every retry — and every router fan-out leg — would
	// open a fresh TCP connection. Past drainLimit, dropping the
	// connection is cheaper than reading an unbounded body to EOF.
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, drainLimit))
		resp.Body.Close()
	}()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, bodyLimit))
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return &transportError{err: fmt.Errorf("reading response: %w", err)}
	}
	// Fill meta from whatever response arrived — failed calls still
	// carry the echoed correlation ID for session logs.
	meta.fill(resp.Header)
	if resp.StatusCode/100 != 2 {
		return newAPIError(resp, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			return fmt.Errorf("client: decoding %d response: %w", resp.StatusCode, err)
		}
	}
	return nil
}

// attemptContext derives the deadline for one attempt: the configured
// PerAttemptTimeout when set, otherwise the remaining overall budget
// divided by the attempts left (so a hung attempt cannot starve its
// successors, and the final attempt gets all remaining time).
func (c *Client) attemptContext(ctx context.Context, attempt int) (context.Context, context.CancelFunc) {
	if c.perTry > 0 {
		return context.WithTimeout(ctx, c.perTry)
	}
	deadline, ok := ctx.Deadline()
	if !ok {
		return context.WithCancel(ctx)
	}
	left := c.max - attempt
	if left < 1 {
		left = 1
	}
	slice := time.Until(deadline) / time.Duration(left)
	if slice <= 0 {
		// Budget already spent: let the attempt fail on the parent.
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, slice)
}

// newAPIError builds an *APIError from a non-2xx response, parsing the
// JSON error body and any Retry-After header.
func newAPIError(resp *http.Response, raw []byte) *APIError {
	e := &APIError{Status: resp.StatusCode}
	var body struct {
		Error             string `json:"error"`
		RetryAfterSeconds int    `json:"retry_after_seconds"`
	}
	if json.Unmarshal(raw, &body) == nil && body.Error != "" {
		e.Message = body.Error
	} else {
		e.Message = strings.TrimSpace(string(raw))
	}
	if e.Message == "" {
		e.Message = http.StatusText(resp.StatusCode)
	}
	e.RetryAfter = parseRetryAfter(resp.Header.Get("Retry-After"))
	if e.RetryAfter == 0 && body.RetryAfterSeconds > 0 {
		e.RetryAfter = time.Duration(body.RetryAfterSeconds) * time.Second
	}
	return e
}
