package client

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"strconv"
	"strings"
)

// Request-correlation headers shared with the server. The client sends
// the same X-Emigre-Request-Id on every attempt of one logical call
// (plus a 1-based X-Emigre-Attempt counter), so server-side captures
// can group retries; the server echoes the ID on the response.
const (
	RequestIDHeader = "X-Emigre-Request-Id"
	AttemptHeader   = "X-Emigre-Attempt"

	cacheTallyHeader = "X-Emigre-Cache"
	parTallyHeader   = "X-Emigre-Par"
)

type requestIDKey struct{}

// WithRequestID pins the correlation ID used for every attempt of calls
// made under ctx, instead of a random per-call ID. Replay tools use it
// to re-send recorded IDs.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// requestID returns the pinned ID under ctx, or a fresh random one.
func requestID(ctx context.Context) string {
	if id, _ := ctx.Value(requestIDKey{}).(string); id != "" {
		return id
	}
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// Meta is the per-call wire metadata the server exposes in headers:
// the echoed correlation ID and the request's cache and parallel-CHECK
// tallies, plus how many attempts the call took client-side.
type Meta struct {
	// RequestID is the correlation ID the call was made (and echoed)
	// under.
	RequestID string
	// Attempts is the number of HTTP attempts this logical call took.
	Attempts int
	// CacheHits/CacheMisses are the server's PPR-cache tallies for this
	// request (X-Emigre-Cache, "3h/1m"); zero when the header is absent.
	CacheHits   int64
	CacheMisses int64
	// ParCommitted/ParWasted are the parallel-CHECK pipeline tallies
	// (X-Emigre-Par, "5c/2w"); zero when the header is absent.
	ParCommitted int64
	ParWasted    int64
}

// fill parses the server's response headers into m.
func (m *Meta) fill(h http.Header) {
	if m == nil {
		return
	}
	if id := h.Get(RequestIDHeader); id != "" {
		m.RequestID = id
	}
	m.CacheHits, m.CacheMisses = parseTally(h.Get(cacheTallyHeader), "h", "m")
	m.ParCommitted, m.ParWasted = parseTally(h.Get(parTallyHeader), "c", "w")
}

// parseTally decodes the server's "<a><suffixA>/<b><suffixB>" tally
// headers ("3h/1m", "5c/2w"); malformed or absent values read as 0.
func parseTally(s, suffixA, suffixB string) (int64, int64) {
	left, right, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0
	}
	a, okA := strings.CutSuffix(left, suffixA)
	b, okB := strings.CutSuffix(right, suffixB)
	if !okA || !okB {
		return 0, 0
	}
	av, errA := strconv.ParseInt(a, 10, 64)
	bv, errB := strconv.ParseInt(b, 10, 64)
	if errA != nil || errB != nil {
		return 0, 0
	}
	return av, bv
}
