package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// pinJitter makes backoff deterministic for the duration of a test.
func pinJitter(t *testing.T, v float64) {
	t.Helper()
	old := jitter
	jitter = func() float64 { return v }
	t.Cleanup(func() { jitter = old })
}

func newTestClient(t *testing.T, h http.HandlerFunc, mod func(*Config)) (*Client, *httptest.Server) {
	t.Helper()
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	cfg := Config{
		BaseURL:     ts.URL,
		MaxAttempts: 4,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
	}
	if mod != nil {
		mod(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, ts
}

// TestRetriesThenSucceeds: two 503s then a 200 converge within the
// attempt budget, and the stats reflect the retries.
func TestRetriesThenSucceeds(t *testing.T) {
	pinJitter(t, 0.5)
	var calls atomic.Int64
	c, _ := newTestClient(t, func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{"error":"saturated"}`, http.StatusServiceUnavailable)
			return
		}
		json.NewEncoder(w).Encode(ExplainResponse{Mode: "remove", Verified: true})
	}, nil)

	out, err := c.Explain(context.Background(), ExplainRequest{User: "u", WNI: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Verified {
		t.Fatalf("unexpected response: %+v", out)
	}
	st := c.Stats()
	if st.Attempts != 3 || st.Retries != 2 {
		t.Fatalf("stats = %+v, want 3 attempts / 2 retries", st)
	}
}

// TestNoRetryOn4xx: a definitive client error is returned immediately.
func TestNoRetryOn4xx(t *testing.T) {
	var calls atomic.Int64
	c, _ := newTestClient(t, func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"no such node"}`, http.StatusBadRequest)
	}, nil)

	_, err := c.Explain(context.Background(), ExplainRequest{User: "u", WNI: "x"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want *APIError 400", err)
	}
	if apiErr.Message != "no such node" {
		t.Fatalf("message = %q", apiErr.Message)
	}
	if calls.Load() != 1 {
		t.Fatalf("calls = %d, want 1 (no retries on 400)", calls.Load())
	}
}

// TestRetryAfterHonored: the server's Retry-After dominates the backoff
// schedule.
func TestRetryAfterHonored(t *testing.T) {
	pinJitter(t, 0)
	var calls atomic.Int64
	var firstRetryGap atomic.Int64
	var last atomic.Int64
	c, _ := newTestClient(t, func(w http.ResponseWriter, r *http.Request) {
		now := time.Now().UnixNano()
		if prev := last.Swap(now); prev != 0 && firstRetryGap.Load() == 0 {
			firstRetryGap.Store(now - prev)
		}
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"busy"}`, http.StatusServiceUnavailable)
			return
		}
		json.NewEncoder(w).Encode(ExplainResponse{})
	}, func(cfg *Config) { cfg.MaxAttempts = 2 })

	if _, err := c.Explain(context.Background(), ExplainRequest{User: "u", WNI: "x"}); err != nil {
		t.Fatal(err)
	}
	if gap := time.Duration(firstRetryGap.Load()); gap < time.Second {
		t.Fatalf("retry after %v, want >= 1s (Retry-After honored)", gap)
	}
	if st := c.Stats(); st.RetryWait < time.Second {
		t.Fatalf("RetryWait = %v, want >= 1s", st.RetryWait)
	}
}

// TestDeadlineBoundsRetries: a context deadline shorter than the
// server's Retry-After makes the client give up promptly instead of
// sleeping past the budget.
func TestDeadlineBoundsRetries(t *testing.T) {
	pinJitter(t, 0)
	c, _ := newTestClient(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		http.Error(w, `{"error":"busy"}`, http.StatusServiceUnavailable)
	}, nil)

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Explain(ctx, ExplainRequest{User: "u", WNI: "x"})
	if err == nil {
		t.Fatal("want error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded in chain", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("gave up after %v, want well under the 30s Retry-After", elapsed)
	}
}

// TestTransportErrorRetriesIdempotent: connection failures retry (all
// built-in calls are idempotent) and eventually surface the transport
// error.
func TestTransportErrorRetriesIdempotent(t *testing.T) {
	pinJitter(t, 0)
	ts := httptest.NewServer(http.NotFoundHandler())
	ts.Close() // refuse every connection
	c, err := New(Config{BaseURL: ts.URL, MaxAttempts: 3, BaseDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Explain(context.Background(), ExplainRequest{User: "u", WNI: "x"})
	if err == nil {
		t.Fatal("want error")
	}
	var tErr *transportError
	if !errors.As(err, &tErr) {
		t.Fatalf("err = %v, want transport error in chain", err)
	}
	if st := c.Stats(); st.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", st.Attempts)
	}
}

// TestNonIdempotentNoTransportRetry: the classification keeps ambiguous
// failures un-retried for non-idempotent calls.
func TestNonIdempotentNoTransportRetry(t *testing.T) {
	c, err := New(Config{BaseURL: "http://example.invalid"})
	if err != nil {
		t.Fatal(err)
	}
	if c.retryable(&transportError{err: errors.New("reset")}, false) {
		t.Fatal("transport error retried for non-idempotent call")
	}
	if !c.retryable(&APIError{Status: 503}, false) {
		t.Fatal("503 must be retryable even when non-idempotent")
	}
	if c.retryable(&APIError{Status: 504}, false) {
		t.Fatal("504 retried for non-idempotent call")
	}
	if !c.retryable(&APIError{Status: 504}, true) {
		t.Fatal("504 must be retryable for idempotent call")
	}
}

// TestDegradedCounted: degraded explanations are surfaced and tallied.
func TestDegradedCounted(t *testing.T) {
	c, _ := newTestClient(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Emigre-Degraded", "partial")
		json.NewEncoder(w).Encode(ExplainResponse{Degraded: true, DegradedLevel: "partial", Partial: true})
	}, nil)
	out, err := c.Explain(context.Background(), ExplainRequest{User: "u", WNI: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Degraded || out.DegradedLevel != "partial" {
		t.Fatalf("response = %+v", out)
	}
	if st := c.Stats(); st.Degraded != 1 {
		t.Fatalf("degraded = %d, want 1", st.Degraded)
	}
}

// TestBackoffSchedule: the capped-exponential ceiling doubles per
// attempt and respects MaxDelay.
func TestBackoffSchedule(t *testing.T) {
	pinJitter(t, 1) // jitter draw at the ceiling exposes the cap
	c, err := New(Config{BaseURL: "http://example.invalid",
		BaseDelay: 100 * time.Millisecond, MaxDelay: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond,
		300 * time.Millisecond, 300 * time.Millisecond}
	for i, w := range want {
		if got := c.backoff(i+1, errors.New("x")); got != w {
			t.Fatalf("backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
}

// TestParseRetryAfter covers both header forms.
func TestParseRetryAfter(t *testing.T) {
	if d := parseRetryAfter("7"); d != 7*time.Second {
		t.Fatalf("seconds form = %v", d)
	}
	if d := parseRetryAfter("-3"); d != 0 {
		t.Fatalf("negative = %v, want 0", d)
	}
	date := time.Now().Add(10 * time.Second).UTC().Format(http.TimeFormat)
	if d := parseRetryAfter(date); d < 8*time.Second || d > 10*time.Second {
		t.Fatalf("date form = %v, want ~10s", d)
	}
	if d := parseRetryAfter("soon"); d != 0 {
		t.Fatalf("garbage = %v, want 0", d)
	}
}

// TestPerAttemptTimeoutDerivation: with an overall deadline, early
// attempts get a slice of the budget, not all of it.
func TestPerAttemptTimeoutDerivation(t *testing.T) {
	c, err := New(Config{BaseURL: "http://example.invalid", MaxAttempts: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Second)
	defer cancel()
	actx, acancel := c.attemptContext(ctx, 0)
	defer acancel()
	deadline, ok := actx.Deadline()
	if !ok {
		t.Fatal("no derived deadline")
	}
	slice := time.Until(deadline)
	if slice > 1100*time.Millisecond || slice < 500*time.Millisecond {
		t.Fatalf("first-attempt slice = %v, want ~1s (4s budget / 4 attempts)", slice)
	}
}
