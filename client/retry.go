package client

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"strconv"
	"time"
)

// transportError wraps a failed round trip (connection refused, reset,
// attempt deadline) — the request may or may not have reached the
// server, so it is retried only for idempotent calls.
type transportError struct{ err error }

func (e *transportError) Error() string { return "client: " + e.err.Error() }
func (e *transportError) Unwrap() error { return e.err }

// jitter supplies the uniform draw for backoff jitter; a variable so
// tests can pin it.
var jitter = rand.Float64

// retryable classifies an attempt error.
//
//   - 429 and 503 are always retryable: the server shed the request
//     before doing any work, so even a non-idempotent call is safe.
//   - Transport errors and 500/502/504 are ambiguous — the server may
//     have processed the request — so they are retried only when the
//     call is idempotent.
//   - Everything else (4xx, decode errors, context expiry) is
//     definitive: retrying cannot change the answer.
func (c *Client) retryable(err error, idempotent bool) bool {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		switch apiErr.Status {
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			return true
		case http.StatusInternalServerError, http.StatusBadGateway,
			http.StatusGatewayTimeout:
			return idempotent
		default:
			return false
		}
	}
	var tErr *transportError
	if errors.As(err, &tErr) {
		return idempotent
	}
	return false
}

// backoff computes the sleep before retry number attempt (1-based):
// capped exponential with full jitter — delay ∈ [0, min(MaxDelay,
// BaseDelay·2^(attempt-1))) — so synchronized clients spread out. A
// Retry-After hint from the server overrides the schedule (the
// admission controller knows the queue better than any client-side
// guess), still jittered upward by as much as one BaseDelay so shed
// clients do not return in lockstep.
func (c *Client) backoff(attempt int, lastErr error) time.Duration {
	var apiErr *APIError
	if errors.As(lastErr, &apiErr) && apiErr.RetryAfter > 0 {
		return apiErr.RetryAfter + time.Duration(jitter()*float64(c.baseDel))
	}
	ceil := c.baseDel << (attempt - 1)
	if ceil > c.maxDel || ceil <= 0 { // <= 0: shift overflow
		ceil = c.maxDel
	}
	return time.Duration(jitter() * float64(ceil))
}

// sleep waits for d or until the context expires, whichever is first,
// and tallies the time actually slept.
func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	// Never sleep past the overall deadline: if the budget cannot cover
	// the wait plus any useful attempt, give up now instead of timing
	// out mid-sleep.
	if deadline, ok := ctx.Deadline(); ok && time.Until(deadline) <= d {
		return context.DeadlineExceeded
	}
	t := time.NewTimer(d)
	defer t.Stop()
	start := time.Now()
	select {
	case <-t.C:
		c.retryWait.Add(int64(time.Since(start)))
		return nil
	case <-ctx.Done():
		c.retryWait.Add(int64(time.Since(start)))
		return ctx.Err()
	}
}

// parseRetryAfter parses a Retry-After header: either delta-seconds or
// an HTTP-date. Unparseable or negative values yield 0 (no hint).
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(v); err == nil {
		if d := time.Until(at); d > 0 {
			return d
		}
	}
	return 0
}
