package client

import (
	"bytes"
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestRetriesReuseConnectionAfterOversizedErrorBody pins the keep-alive
// contract the router's fan-out depends on: when an error response
// carries more than bodyLimit bytes, the attempt must drain (bounded)
// before Close so the retry reuses the same TCP connection. Pre-fix,
// the unread tail forfeited the connection and every retry dialed
// fresh — this test counts 3 connections instead of 1 on that code.
func TestRetriesReuseConnectionAfterOversizedErrorBody(t *testing.T) {
	pinJitter(t, 0)

	// The 503 body overflows bodyLimit by less than drainLimit: the
	// decoder stops at the limit, the drain finishes the tail, and the
	// connection stays reusable.
	big := bytes.Repeat([]byte("x"), bodyLimit+1024)
	var calls atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write(big)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"status":"ok"}` + "\n"))
	})

	ts := httptest.NewUnstartedServer(h)
	var conns atomic.Int64
	ts.Config.ConnState = func(c net.Conn, s http.ConnState) {
		if s == http.StateNew {
			conns.Add(1)
		}
	}
	ts.Start()
	t.Cleanup(ts.Close)

	c, err := New(Config{
		BaseURL:     ts.URL,
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond,
		MaxDelay:    time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Ready(context.Background()); err != nil {
		t.Fatalf("Ready after retries: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (two 503s then success)", got)
	}
	if got := conns.Load(); got != 1 {
		t.Fatalf("retries opened %d connections, want 1 (keep-alive lost: error body not drained before Close)", got)
	}
}

// TestOversizedBodyPastDrainLimitAbandonsConnection documents the other
// side of the bound: when the unread tail exceeds drainLimit, the
// client abandons the connection instead of reading an unbounded body,
// so the retry dials fresh. That is a deliberate trade, not a leak.
func TestOversizedBodyPastDrainLimitAbandonsConnection(t *testing.T) {
	pinJitter(t, 0)

	big := bytes.Repeat([]byte("x"), bodyLimit+drainLimit+1024)
	var calls atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write(big)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"status":"ok"}` + "\n"))
	})

	ts := httptest.NewUnstartedServer(h)
	var conns atomic.Int64
	ts.Config.ConnState = func(c net.Conn, s http.ConnState) {
		if s == http.StateNew {
			conns.Add(1)
		}
	}
	ts.Start()
	t.Cleanup(ts.Close)

	c, err := New(Config{
		BaseURL:     ts.URL,
		MaxAttempts: 2,
		BaseDelay:   time.Millisecond,
		MaxDelay:    time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Ready(context.Background()); err != nil {
		t.Fatalf("Ready after retry: %v", err)
	}
	if got := conns.Load(); got != 2 {
		t.Fatalf("retry used %d connections, want 2 (tail past drainLimit abandons the connection)", got)
	}
}
