package client

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestRequestIDStableAcrossRetries: every attempt of one logical call
// carries the same X-Emigre-Request-Id with an incrementing attempt
// counter, and the echoed ID lands in the response Meta.
func TestRequestIDStableAcrossRetries(t *testing.T) {
	pinJitter(t, 0)
	var mu sync.Mutex
	var ids, attempts []string
	c, _ := newTestClient(t, func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		ids = append(ids, r.Header.Get(RequestIDHeader))
		attempts = append(attempts, r.Header.Get(AttemptHeader))
		n := len(ids)
		mu.Unlock()
		w.Header().Set(RequestIDHeader, r.Header.Get(RequestIDHeader))
		if n <= 2 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{"error":"saturated"}`, http.StatusServiceUnavailable)
			return
		}
		json.NewEncoder(w).Encode(ExplainResponse{Verified: true})
	}, nil)

	out, err := c.Explain(context.Background(), ExplainRequest{User: "u", WNI: "x"})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(ids) != 3 {
		t.Fatalf("attempts = %d, want 3", len(ids))
	}
	if ids[0] == "" || ids[0] != ids[1] || ids[1] != ids[2] {
		t.Errorf("request IDs differ across retries: %v", ids)
	}
	if attempts[0] != "1" || attempts[1] != "2" || attempts[2] != "3" {
		t.Errorf("attempt headers = %v, want 1,2,3", attempts)
	}
	if out.Meta.RequestID != ids[0] {
		t.Errorf("Meta.RequestID = %q, want echoed %q", out.Meta.RequestID, ids[0])
	}
	if out.Meta.Attempts != 3 {
		t.Errorf("Meta.Attempts = %d, want 3", out.Meta.Attempts)
	}
}

// TestWithRequestIDPinsID: a replay-style pinned ID is sent verbatim.
func TestWithRequestIDPinsID(t *testing.T) {
	var got string
	c, _ := newTestClient(t, func(w http.ResponseWriter, r *http.Request) {
		got = r.Header.Get(RequestIDHeader)
		json.NewEncoder(w).Encode(ExplainResponse{})
	}, nil)
	ctx := WithRequestID(context.Background(), "replay-42")
	out, err := c.Explain(ctx, ExplainRequest{User: "u", WNI: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if got != "replay-42" {
		t.Errorf("server saw ID %q, want replay-42", got)
	}
	if out.Meta.RequestID != "replay-42" {
		t.Errorf("Meta.RequestID = %q", out.Meta.RequestID)
	}
}

// TestMetaParsesTallyHeaders: the X-Emigre-Cache / X-Emigre-Par wire
// tallies decode into Meta; malformed values read as zero.
func TestMetaParsesTallyHeaders(t *testing.T) {
	c, _ := newTestClient(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(cacheTallyHeader, "3h/1m")
		w.Header().Set(parTallyHeader, "5c/2w")
		json.NewEncoder(w).Encode(ExplainResponse{})
	}, nil)
	out, err := c.Explain(context.Background(), ExplainRequest{User: "u", WNI: "x"})
	if err != nil {
		t.Fatal(err)
	}
	m := out.Meta
	if m.CacheHits != 3 || m.CacheMisses != 1 || m.ParCommitted != 5 || m.ParWasted != 2 {
		t.Errorf("Meta tallies = %+v, want 3h/1m 5c/2w", m)
	}

	for _, bad := range []string{"", "3/1", "3h1m", "xh/ym", "3h/"} {
		if a, b := parseTally(bad, "h", "m"); a != 0 || b != 0 {
			t.Errorf("parseTally(%q) = %d,%d, want 0,0", bad, a, b)
		}
	}
}

// TestRetryAfterBodyFieldOnly: a 503 whose retry hint is only in the
// JSON body (no Retry-After header) must still drive the backoff — the
// regression this test pins is the client ignoring retry_after_seconds
// when the header is absent.
func TestRetryAfterBodyFieldOnly(t *testing.T) {
	pinJitter(t, 0)
	var mu sync.Mutex
	var times []time.Time
	c, _ := newTestClient(t, func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		times = append(times, time.Now())
		n := len(times)
		mu.Unlock()
		if n == 1 {
			// Deliberately no Retry-After header: hint in the body only.
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(map[string]any{
				"error":               "server saturated",
				"retry_after_seconds": 1,
			})
			return
		}
		json.NewEncoder(w).Encode(ExplainResponse{Verified: true})
	}, func(cfg *Config) { cfg.MaxAttempts = 2 })

	out, err := c.Explain(context.Background(), ExplainRequest{User: "u", WNI: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Verified {
		t.Fatalf("unexpected response: %+v", out)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(times) != 2 {
		t.Fatalf("attempts = %d, want 2", len(times))
	}
	if gap := times[1].Sub(times[0]); gap < time.Second {
		t.Errorf("retry gap = %v, want >= 1s (body retry_after_seconds honored)", gap)
	}
	if st := c.Stats(); st.RetryWait < time.Second {
		t.Errorf("RetryWait = %v, want >= 1s", st.RetryWait)
	}
}
