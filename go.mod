module github.com/why-not-xai/emigre

go 1.22
